//! The resident proving server behind `zkvc serve`: a long-running
//! process that reads JSON-lines job requests from a stream (stdin in the
//! CLI), proves them on a [`ProvingPool`], and streams JSON-lines
//! responses back **as each proof completes** — out of order, tagged with
//! the request's own `id`. The pool's [`KeyCache`] lives as long as the
//! server, so a repeat circuit shape is O(prove), not O(setup), no matter
//! how many requests ago it was first seen.
//!
//! ## Wire format
//!
//! One JSON object per line, flat (no nested containers). Requests:
//!
//! ```text
//! {"spec": "8x8x16:zkvc:g"}
//! {"spec": "4x4x4:spartan:x3", "id": "batch-7", "seed": 42, "priority": "high"}
//! ```
//!
//! * `spec` (required): the job grammar shared with the whole CLI,
//!   including `:xCOUNT` repetition (capped at the queue bound per line,
//!   so one line cannot commit the server to unbounded proving).
//! * `id` (optional): string or number, echoed verbatim in every response
//!   for this request.
//! * `seed` (optional): statement seed for this request (default: the
//!   server's `--seed`). Proofs are produced for *statement id 0* at that
//!   seed, so `zkvc verify --spec S --seed N` can check them offline.
//! * `priority` (optional): `"high"` or `"normal"`, overriding the
//!   spec-derived class.
//!
//! Responses (`type` field discriminates):
//!
//! ```text
//! {"type":"ready","proto":"zkvc-serve/v1","workers":4,"seed":0,"queue_bound":256}
//! {"type":"result","id":"batch-7","job":3,"spec":"4x4x4:crpc+psq:spartan","seed":42,
//!  "verified":true,"cache_hit":false,"worker":1,"constraints":208,
//!  "shape_digest":"...","queue_ms":0.1,"build_ms":1.2,"prove_ms":31.0,
//!  "verify_ms":2.4,"proof_bytes":412,"proof_hex":"..."}
//! {"type":"key","backend":"groth16","shape_digest":"...","seed":0,"vk_hex":"..."}
//! {"type":"error","id":null,"code":2,"error":"bad request: ..."}
//! {"type":"summary","jobs":4,"verified":4,"failed":0,"rejected":1,
//!  "cache_hits":3,"cache_misses":1,"wall_s":1.204}
//! ```
//!
//! A `key` line is emitted once per new Groth16 `(shape, seed)` — result
//! envelopes are keyless, exactly like pool batches — when the shape's
//! first-setup job completes (results for cache-hit jobs of the same
//! shape may land before it; buffer if verifying online). Malformed,
//! oversized, or unparseable requests are answered with an `error` line
//! carrying the exit-code class the CLI would have used (`2`), and the
//! server keeps running: one bad client line never kills the process.

use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use zkvc_core::{Backend, VerifierKey};

use crate::cache::KeyCache;
use crate::disk::DiskKeyCache;
use crate::error::Error;
use crate::pool::{JobResult, PoolConfig, ProvingPool, ResultSink};
use crate::sched::Priority;
use crate::spec::JobSpec;
use crate::util::{hex, json_escape};

/// Configuration for [`serve`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Worker threads proving requests.
    pub workers: usize,
    /// Default statement seed for requests that carry none; also seeds
    /// the resident key cache.
    pub seed: u64,
    /// Backpressure bound: request intake blocks (in the pipe) while this
    /// many jobs are queued.
    pub queue_bound: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// discarded whole and answered with an error response.
    pub max_request_bytes: usize,
    /// Whether `result` lines carry the proof envelope as `proof_hex`
    /// (disable for throughput probes that only want verdicts).
    pub include_proofs: bool,
    /// When set, Groth16 verification keys are persisted here as shapes
    /// are first proved, so offline `zkvc verify --key-cache` calls skip
    /// CRS re-derivation.
    pub disk_cache: Option<DiskKeyCache>,
}

impl ServeConfig {
    /// Defaults: `workers` threads, seed 0, 256-job queue bound, 64 KiB
    /// request lines, proofs included, no disk persistence.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers: workers.max(1),
            seed: 0,
            queue_bound: 256,
            max_request_bytes: 64 * 1024,
            include_proofs: true,
            disk_cache: None,
        }
    }

    /// Sets the default statement seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the backpressure bound (clamped to at least 1).
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound.max(1);
        self
    }

    /// Sets the request-line size limit (clamped to at least 64 bytes).
    pub fn max_request_bytes(mut self, max: usize) -> Self {
        self.max_request_bytes = max.max(64);
        self
    }

    /// Sets whether result lines include the proof bytes.
    pub fn include_proofs(mut self, include: bool) -> Self {
        self.include_proofs = include;
        self
    }

    /// Enables on-disk persistence of Groth16 verification keys.
    pub fn disk_cache(mut self, disk: Option<DiskKeyCache>) -> Self {
        self.disk_cache = disk;
        self
    }
}

/// What a [`serve`] session did, returned after the input stream ends.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs accepted and run (including cancelled/panicked ones).
    pub jobs: usize,
    /// Jobs whose proof verified.
    pub verified: usize,
    /// Jobs that did not verify (bad proof, cancelled, panicked).
    pub failed: usize,
    /// Request lines rejected before reaching the pool (malformed JSON,
    /// unknown fields, bad specs, oversized lines).
    pub rejected: usize,
}

#[derive(Default)]
struct Counters {
    jobs: AtomicUsize,
    verified: AtomicUsize,
}

/// Shared writer: worker sinks and the intake loop interleave whole
/// lines; the first I/O error is latched and ends the session.
struct Output<W: Write> {
    writer: Mutex<W>,
    broken: Mutex<Option<io::Error>>,
}

impl<W: Write> Output<W> {
    fn emit(&self, line: &str) {
        let mut w = self.writer.lock().expect("serve output poisoned");
        let result = writeln!(w, "{line}").and_then(|_| w.flush());
        if let Err(e) = result {
            let mut broken = self.broken.lock().expect("serve output poisoned");
            broken.get_or_insert(e);
        }
    }

    /// `true` once any emit has failed; the latched error stays put for
    /// [`Output::take_error`] so a broken-pipe session still reports its
    /// root cause at the end.
    fn is_broken(&self) -> bool {
        self.broken.lock().expect("serve output poisoned").is_some()
    }

    fn take_error(&self) -> Option<io::Error> {
        self.broken.lock().expect("serve output poisoned").take()
    }
}

/// Runs the serve loop over `input`/`output` until `input` reaches EOF,
/// then drains the pool, writes the `summary` line, and returns the
/// totals. Fatal errors are I/O errors on the streams themselves; request
/// problems are answered in-stream and never returned.
pub fn serve<R: BufRead, W: Write + Send + 'static>(
    mut input: R,
    output: W,
    config: ServeConfig,
) -> Result<ServeSummary, Error> {
    let started = Instant::now();
    let out = Arc::new(Output {
        writer: Mutex::new(output),
        broken: Mutex::new(None),
    });
    let cache = Arc::new(KeyCache::with_seed(config.seed));
    let counters = Arc::new(Counters::default());

    let sink: ResultSink = {
        let out = Arc::clone(&out);
        let cache = Arc::clone(&cache);
        let counters = Arc::clone(&counters);
        let include_proofs = config.include_proofs;
        let disk = config.disk_cache.clone();
        Arc::new(move |result: &JobResult| {
            // First setup of a Groth16 (shape, seed): stream the vk once
            // (results are keyless) and persist it if configured.
            if result.error.is_none()
                && !result.cache_hit
                && result.spec.backend() == Backend::Groth16
            {
                if let Some(keys) = cache.get(&result.shape_digest, Backend::Groth16, result.seed) {
                    if let VerifierKey::Groth16(vk) = &keys.verifier {
                        out.emit(&format!(
                            "{{\"type\":\"key\",\"backend\":\"groth16\",\"shape_digest\":\"{}\",\"seed\":{},\"vk_hex\":\"{}\"}}",
                            hex(&result.shape_digest),
                            result.seed,
                            hex(&vk.to_bytes())
                        ));
                        if let Some(disk) = &disk {
                            // Persistence is best-effort: a read-only disk
                            // must not fail the job.
                            let _ = disk.store_groth16_vk(&result.shape_digest, result.seed, vk);
                        }
                    }
                }
            }
            counters.jobs.fetch_add(1, Ordering::Relaxed);
            if result.verified {
                counters.verified.fetch_add(1, Ordering::Relaxed);
            }
            out.emit(&result_line(result, include_proofs));
        })
    };

    let pool = ProvingPool::configured(
        PoolConfig::new(config.workers)
            .seed(config.seed)
            .queue_bound(config.queue_bound)
            .retain_results(false),
        Arc::clone(&cache),
        Some(sink),
    );

    out.emit(&format!(
        "{{\"type\":\"ready\",\"proto\":\"zkvc-serve/v1\",\"workers\":{},\"seed\":{},\"queue_bound\":{}}}",
        pool_workers(&config),
        config.seed,
        config.queue_bound
    ));

    let mut rejected = 0usize;
    loop {
        if out.is_broken() {
            // The consumer hung up; stop reading, drain, and report below.
            break;
        }
        match read_bounded_line(&mut input, config.max_request_bytes) {
            Ok(None) => break, // EOF: orderly shutdown
            Ok(Some(Err(LineReject::TooLarge(actual)))) => {
                rejected += 1;
                let error = Error::RequestTooLarge {
                    actual,
                    limit: config.max_request_bytes,
                };
                out.emit(&error_line(None, &error));
            }
            Ok(Some(Err(LineReject::NotUtf8))) => {
                rejected += 1;
                let error = Error::Request("request line is not valid UTF-8".into());
                out.emit(&error_line(None, &error));
            }
            Ok(Some(Ok(line))) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse_request(line) {
                    // The repetition count is bounded by the queue: one
                    // tiny `:xN` line must not be able to commit the
                    // server to an unbounded amount of proving (the
                    // request-size bound would be meaningless otherwise).
                    Ok(request) if request.count > config.queue_bound => {
                        rejected += 1;
                        let error = Error::Request(format!(
                            "repetition count {} exceeds the queue bound {} (send more lines instead)",
                            request.count, config.queue_bound
                        ));
                        out.emit(&error_line(request.id_json.as_deref(), &error));
                    }
                    Ok(request) => {
                        let seed = request.seed.unwrap_or(config.seed);
                        let priority = request.priority.unwrap_or(request.spec.priority());
                        for _ in 0..request.count {
                            pool.submit_request(
                                request.spec,
                                seed,
                                priority,
                                request.id_json.clone(),
                            );
                        }
                    }
                    Err((error, id_json)) => {
                        rejected += 1;
                        out.emit(&error_line(id_json.as_deref(), &error));
                    }
                }
            }
            Err(e) => return Err(Error::io("<serve input>", e)),
        }
    }

    let report = pool.join();
    let jobs = counters.jobs.load(Ordering::Relaxed);
    let verified = counters.verified.load(Ordering::Relaxed);
    let summary = ServeSummary {
        jobs,
        verified,
        failed: jobs - verified,
        rejected,
    };
    out.emit(&format!(
        "{{\"type\":\"summary\",\"jobs\":{},\"verified\":{},\"failed\":{},\"rejected\":{},\"cache_hits\":{},\"cache_misses\":{},\"wall_s\":{:.3}}}",
        summary.jobs,
        summary.verified,
        summary.failed,
        summary.rejected,
        report.cache.hits,
        report.cache.misses,
        started.elapsed().as_secs_f64()
    ));
    if let Some(e) = out.take_error() {
        return Err(Error::io("<serve output>", e));
    }
    Ok(summary)
}

fn pool_workers(config: &ServeConfig) -> usize {
    config.workers.max(1)
}

/// Renders one `result` response line.
fn result_line(r: &JobResult, include_proof: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"type\":\"result\",\"id\":{},\"job\":{},\"spec\":\"{}\",\"seed\":{},\"verified\":{}",
        r.tag.as_deref().unwrap_or("null"),
        r.id,
        json_escape(&r.spec.to_string()),
        r.seed,
        r.verified
    );
    match &r.error {
        Some(error) => {
            let _ = write!(
                s,
                ",\"code\":1,\"error\":\"{}\"",
                json_escape(&error.to_string())
            );
        }
        None => {
            let _ = write!(
                s,
                ",\"cache_hit\":{},\"worker\":{},\"constraints\":{},\"shape_digest\":\"{}\",\"queue_ms\":{:.3},\"build_ms\":{:.3},\"prove_ms\":{:.3},\"verify_ms\":{:.3},\"proof_bytes\":{}",
                r.cache_hit,
                r.worker,
                r.num_constraints,
                hex(&r.shape_digest),
                r.queue_wait.as_secs_f64() * 1e3,
                r.build_time.as_secs_f64() * 1e3,
                r.prove_time.as_secs_f64() * 1e3,
                r.verify_time.as_secs_f64() * 1e3,
                r.proof_bytes.len()
            );
            if include_proof {
                let _ = write!(s, ",\"proof_hex\":\"{}\"", hex(&r.proof_bytes));
            }
        }
    }
    s.push('}');
    s
}

/// Renders one `error` response line; `id_json` is the request's echoed
/// id when it could be recovered from the malformed line.
fn error_line(id_json: Option<&str>, error: &Error) -> String {
    format!(
        "{{\"type\":\"error\",\"id\":{},\"code\":{},\"error\":\"{}\"}}",
        id_json.unwrap_or("null"),
        error.exit_code(),
        json_escape(&error.to_string())
    )
}

/// Why a request line was rejected before parsing.
#[derive(Debug, PartialEq, Eq)]
enum LineReject {
    /// The line exceeded the size bound; carries the total bytes consumed.
    TooLarge(usize),
    /// The line was not valid UTF-8 (rejected outright: lossy decoding
    /// would corrupt echoed ids without the client noticing).
    NotUtf8,
}

/// Reads one request line of at most `max` bytes. Returns `Ok(None)` at
/// EOF, `Ok(Some(Err(..)))` for a rejected line (an oversized line is
/// consumed and discarded in full so the stream stays line-aligned), and
/// the line without its terminator otherwise.
fn read_bounded_line<R: BufRead>(
    input: &mut R,
    max: usize,
) -> io::Result<Option<Result<String, LineReject>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut saw_any = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None); // EOF before any byte of a line
            }
            break; // EOF terminates the final (newline-less) line
        }
        saw_any = true;
        let (line_part, found_newline) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (&chunk[..pos], true),
            None => (chunk, false),
        };
        total += line_part.len();
        if total <= max {
            buf.extend_from_slice(line_part);
        }
        let consumed = line_part.len() + usize::from(found_newline);
        input.consume(consumed);
        if found_newline {
            break;
        }
    }
    if total > max {
        // Oversized: the whole line was consumed (keeping the stream
        // line-aligned) but never buffered beyond the bound.
        return Ok(Some(Err(LineReject::TooLarge(total))));
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err(LineReject::NotUtf8))),
    }
}

/// One parsed request line.
#[derive(Debug)]
struct Request {
    spec: JobSpec,
    count: usize,
    seed: Option<u64>,
    priority: Option<Priority>,
    /// The request's `id`, re-encoded as a JSON token for echoing.
    id_json: Option<String>,
}

/// A flat JSON value (the wire format forbids nested containers).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Str(String),
    /// Numbers keep their raw token so 64-bit seeds survive exactly.
    Num(String),
    Bool(bool),
    Null,
}

/// Parses a request line; on failure returns the error plus the request
/// id if one could still be recovered (so the error response correlates).
fn parse_request(line: &str) -> Result<Request, (Error, Option<String>)> {
    let fields = parse_json_object(line).map_err(|reason| (Error::Request(reason), None))?;
    let id_json = fields
        .iter()
        .find(|(k, _)| k == "id")
        .map(|(_, v)| match v {
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Num(raw) => raw.clone(),
            Json::Bool(b) => b.to_string(),
            Json::Null => "null".to_string(),
        });
    let fail = |error: Error| (error, id_json.clone());

    let mut spec_count: Option<(JobSpec, usize)> = None;
    let mut seed = None;
    let mut priority = None;
    for (key, value) in &fields {
        match key.as_str() {
            "spec" => {
                let Json::Str(s) = value else {
                    return Err(fail(Error::Request("\"spec\" must be a string".into())));
                };
                spec_count = Some(JobSpec::parse(s).map_err(&fail)?);
            }
            "seed" => {
                let parsed = match value {
                    Json::Num(raw) => raw.parse::<u64>().ok(),
                    _ => None,
                };
                let Some(parsed) = parsed else {
                    return Err(fail(Error::Request(
                        "\"seed\" must be a non-negative integer".into(),
                    )));
                };
                seed = Some(parsed);
            }
            "priority" => {
                let token = match value {
                    Json::Str(s) => s.as_str(),
                    _ => "",
                };
                priority = Some(match token {
                    "high" => Priority::High,
                    "normal" => Priority::Normal,
                    _ => {
                        return Err(fail(Error::Request(
                            "\"priority\" must be \"high\" or \"normal\"".into(),
                        )))
                    }
                });
            }
            "id" => match value {
                Json::Str(_) | Json::Num(_) => {} // captured above
                _ => {
                    return Err(fail(Error::Request(
                        "\"id\" must be a string or a number".into(),
                    )))
                }
            },
            other => {
                return Err(fail(Error::Request(format!(
                    "unknown field {other:?} (expected spec, id, seed, priority)"
                ))));
            }
        }
    }
    let Some((spec, count)) = spec_count else {
        return Err(fail(Error::Request(
            "missing required field \"spec\"".into(),
        )));
    };
    Ok(Request {
        spec,
        count,
        seed,
        priority,
        id_json,
    })
}

/// Minimal JSON parser for one flat object: string keys, and string /
/// number / boolean / null values. Nested objects and arrays are
/// rejected — the request grammar has no use for them, and refusing them
/// keeps the attack surface of a network-facing loop small.
fn parse_json_object(input: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = JsonParser {
        chars: input.char_indices().peekable(),
        input,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.expect_end()?;
        return Ok(fields);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        fields.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.expect_end()?;
        return Ok(fields);
    }
}

struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some((i, c)) => Err(format!("trailing content at byte {i}: {c:?}")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = self.chars.next() else {
                                return Err("truncated \\u escape".into());
                            };
                            let Some(digit) = h.to_digit(16) else {
                                return Err(format!("bad hex digit {h:?} in \\u escape"));
                            };
                            code = code * 16 + digit;
                        }
                        let Some(c) = char::from_u32(code) else {
                            return Err(format!(
                                "\\u{code:04x} is not a scalar value (surrogate pairs unsupported)"
                            ));
                        };
                        out.push(c);
                    }
                    Some((j, other)) => {
                        return Err(format!("unknown escape \\{other} at byte {j}"))
                    }
                    None => return Err(format!("dangling escape at byte {i}")),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character at byte {i}"))
                }
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.chars.peek().copied() {
            None => Err("expected a value, found end of line".into()),
            Some((_, '"')) => Ok(Json::Str(self.parse_string()?)),
            Some((_, '{')) | Some((_, '[')) => {
                Err("nested objects/arrays are not part of the request grammar".into())
            }
            Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                let mut end = start;
                while let Some((i, c)) = self.chars.peek().copied() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                let raw = &self.input[start..end];
                // Validate the token is at least f64-shaped.
                raw.parse::<f64>()
                    .map_err(|_| format!("bad number {raw:?}"))?;
                Ok(Json::Num(raw.to_string()))
            }
            Some((start, c)) if c.is_ascii_alphabetic() => {
                let mut end = start;
                while let Some((i, c)) = self.chars.peek().copied() {
                    if c.is_ascii_alphabetic() {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                match &self.input[start..end] {
                    "true" => Ok(Json::Bool(true)),
                    "false" => Ok(Json::Bool(false)),
                    "null" => Ok(Json::Null),
                    other => Err(format!("unknown literal {other:?}")),
                }
            }
            Some((i, c)) => Err(format!("unexpected {c:?} at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use zkvc_core::matmul::Strategy;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn parses_full_and_minimal_requests() {
        let r = parse_request(r#"{"spec": "2x3x2:zkvc:s"}"#).unwrap();
        assert_eq!(
            r.spec,
            JobSpec::new(2, 3, 2).with_backend(zkvc_core::Backend::Spartan)
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.seed, None);
        assert_eq!(r.priority, None);
        assert_eq!(r.id_json, None);

        let r = parse_request(
            r#"{"id": "req-1", "spec": "4x4x4:vanilla:x3", "seed": 42, "priority": "normal"}"#,
        )
        .unwrap();
        assert_eq!(r.spec.strategy(), Strategy::Vanilla);
        assert_eq!(r.count, 3);
        assert_eq!(r.seed, Some(42));
        assert_eq!(r.priority, Some(Priority::Normal));
        assert_eq!(r.id_json.as_deref(), Some("\"req-1\""));

        // Numeric ids echo as numbers; 64-bit seeds survive exactly.
        let r =
            parse_request(r#"{"id": 7, "spec": "2x2x2", "seed": 18446744073709551615}"#).unwrap();
        assert_eq!(r.id_json.as_deref(), Some("7"));
        assert_eq!(r.seed, Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_requests_with_recovered_ids() {
        for (line, needle) in [
            ("not json at all", "expected '{'"),
            ("{\"spec\": \"2x2x2\"", "expected '}'"),
            (r#"{"spec": 7}"#, "must be a string"),
            (r#"{"spec": "2x2x2", "extra": 1}"#, "unknown field"),
            (r#"{"seed": 1}"#, "missing required field"),
            (r#"{"spec": "2x2x2", "seed": -4}"#, "non-negative integer"),
            (r#"{"spec": "2x2x2", "seed": 1.5}"#, "non-negative integer"),
            (r#"{"spec": "2x2x2", "priority": "urgent"}"#, "priority"),
            (r#"{"spec": "bogus"}"#, "bad spec"),
            (r#"{"spec": ["2x2x2"]}"#, "nested"),
            (r#"{"spec": "2x2x2"} trailing"#, "trailing content"),
        ] {
            let (error, _) = parse_request(line).unwrap_err();
            assert_eq!(error.exit_code(), 2, "{line}");
            assert!(error.to_string().contains(needle), "{line}: {error}");
        }

        // The id is recovered even when another field is broken.
        let (_, id) = parse_request(r#"{"id": "x", "spec": 1}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("\"x\""));
    }

    #[test]
    fn bounded_reader_discards_whole_oversized_lines() {
        let long = format!("{}\nshort\n", "a".repeat(200));
        let mut input = Cursor::new(long.into_bytes());
        match read_bounded_line(&mut input, 64).unwrap() {
            Some(Err(LineReject::TooLarge(total))) => assert_eq!(total, 200),
            other => panic!("expected oversize, got {other:?}"),
        }
        // The stream is still line-aligned: the next read sees "short".
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Ok("short".to_string()))
        );
        assert_eq!(read_bounded_line(&mut input, 64).unwrap(), None);
    }

    #[test]
    fn serve_round_trips_requests_and_survives_garbage() {
        // Two good requests (same shape: second must hit the cache), one
        // malformed JSON line, one unknown-field line, one oversized line.
        let oversized = format!(r#"{{"spec": "2x3x2:zkvc:s", "id": "{}"}}"#, "x".repeat(300));
        let input = format!(
            "{}\n{}\nnot json\n{}\n{oversized}\n",
            r#"{"id": "a", "spec": "2x3x2:zkvc:s"}"#,
            r#"{"id": "b", "spec": "2x3x2:zkvc:s"}"#,
            r#"{"id": "c", "spec": "2x3x2:zkvc:s", "frobnicate": true}"#,
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.into_bytes()),
            buf.clone(),
            ServeConfig::new(2).seed(7).max_request_bytes(256),
        )
        .unwrap();
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.verified, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.rejected, 3);

        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"ready\""), "{text}");
        assert!(
            lines.last().unwrap().contains("\"type\":\"summary\""),
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"result\"") && l.contains("\"verified\":true"))
                .count(),
            2,
            "{text}"
        );
        // Request ids are echoed; the cache was warm for one of the two.
        assert!(
            text.contains("\"id\":\"a\"") && text.contains("\"id\":\"b\""),
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"cache_hit\":true"))
                .count(),
            1,
            "{text}"
        );
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"error\"") && l.contains("\"code\":2"))
                .count(),
            3,
            "{text}"
        );
        assert!(text.contains("request too large"), "{text}");
        // Spartan jobs ship no key lines (no wire form).
        assert!(!text.contains("\"type\":\"key\""), "{text}");

        // Responses are themselves valid flat JSON per this module's own
        // parser (modulo the proof hex payload, which is plain).
        for line in &lines {
            parse_json_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn bounded_reader_rejects_invalid_utf8() {
        let mut input = Cursor::new(b"\xff\xfe bad bytes\nok\n".to_vec());
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Err(LineReject::NotUtf8))
        );
        assert_eq!(
            read_bounded_line(&mut input, 64).unwrap(),
            Some(Ok("ok".to_string()))
        );
    }

    #[test]
    fn serve_caps_per_request_repetition_at_the_queue_bound() {
        // One tiny `:xN` line must not commit the server to unbounded
        // proving: counts above the queue bound are rejected with a
        // code-2 error and the server keeps serving.
        let input = concat!(
            "{\"spec\": \"2x2x2:zkvc:s:x4000000000\", \"id\": \"flood\"}\n",
            "{\"spec\": \"2x2x2:zkvc:s:x2\", \"id\": \"ok\"}\n",
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.as_bytes().to_vec()),
            buf.clone(),
            ServeConfig::new(1).queue_bound(8),
        )
        .unwrap();
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.jobs, 2, "the in-bound repetition still ran");
        assert_eq!(summary.verified, 2);
        let text = buf.text();
        assert!(
            text.contains("\"id\":\"flood\"")
                && text.contains("exceeds the queue bound")
                && text.contains("\"code\":2"),
            "{text}"
        );
    }

    #[test]
    fn serve_streams_groth16_keys_once_per_shape() {
        let input = concat!(
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 1}\n",
            "{\"spec\": \"2x2x2:vanilla:g\", \"id\": 2}\n",
        );
        let buf = SharedBuf::default();
        let summary = serve(
            Cursor::new(input.as_bytes().to_vec()),
            buf.clone(),
            ServeConfig::new(1),
        )
        .unwrap();
        assert_eq!(summary.verified, 2);
        let text = buf.text();
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"type\":\"key\""))
                .count(),
            1,
            "one key line per (shape, seed): {text}"
        );
        assert!(text.contains("\"vk_hex\":\""), "{text}");
    }
}
