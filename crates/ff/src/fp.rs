//! Generic 256-bit prime field in Montgomery form.
//!
//! The concrete fields [`crate::fields::Fr`] and [`crate::fields::Fq`] are
//! instantiations of [`Fp`] with their parameter types. All arithmetic is
//! branch-free four-limb Montgomery arithmetic (CIOS-style reduction of the
//! full 512-bit product).

use core::fmt;
use core::hash::{Hash, Hasher};
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::arith::{adc, bit_4, lt_4, mac, sbb};
use crate::traits::{Field, PrimeField};

/// Compile-time parameters describing a prime field.
pub trait FpParams: 'static + Copy + Clone + Send + Sync + core::fmt::Debug {
    /// The modulus, little-endian limbs. Must be an odd prime `< 2^255`.
    const MODULUS: [u64; 4];
    /// `2^256 mod MODULUS` (the Montgomery radix).
    const R: [u64; 4];
    /// `R^2 mod MODULUS`.
    const R2: [u64; 4];
    /// `-MODULUS^{-1} mod 2^64`.
    const INV: u64;
    /// Number of significant bits of the modulus.
    const MODULUS_BITS: u32;
    /// 2-adicity of the multiplicative group (0 when unused).
    const TWO_ADICITY: u32;
    /// A primitive `2^TWO_ADICITY`-th root of unity, standard form limbs.
    const ROOT_OF_UNITY: [u64; 4];
    /// A multiplicative generator of the field, standard form limbs.
    const GENERATOR: [u64; 4];
}

/// An element of the prime field described by `P`, kept in Montgomery form.
#[derive(Copy, Clone)]
pub struct Fp<P: FpParams>(pub(crate) [u64; 4], pub(crate) PhantomData<P>);

impl<P: FpParams> Fp<P> {
    /// The zero element.
    pub const fn zero_const() -> Self {
        Fp([0, 0, 0, 0], PhantomData)
    }

    /// Builds an element directly from Montgomery-form limbs.
    ///
    /// Intended for constants produced by the parameter generator; the caller
    /// must guarantee the limbs are reduced.
    pub const fn from_montgomery_limbs(limbs: [u64; 4]) -> Self {
        Fp(limbs, PhantomData)
    }

    /// The raw Montgomery-form limbs.
    pub const fn montgomery_limbs(&self) -> [u64; 4] {
        self.0
    }

    #[inline]
    fn subtract_p(&self) -> Self {
        let (r0, borrow) = sbb(self.0[0], P::MODULUS[0], 0);
        let (r1, borrow) = sbb(self.0[1], P::MODULUS[1], borrow);
        let (r2, borrow) = sbb(self.0[2], P::MODULUS[2], borrow);
        let (r3, borrow) = sbb(self.0[3], P::MODULUS[3], borrow);
        // If the subtraction underflowed, keep the original limbs.
        let r0 = (self.0[0] & borrow) | (r0 & !borrow);
        let r1 = (self.0[1] & borrow) | (r1 & !borrow);
        let r2 = (self.0[2] & borrow) | (r2 & !borrow);
        let r3 = (self.0[3] & borrow) | (r3 & !borrow);
        Fp([r0, r1, r2, r3], PhantomData)
    }

    #[inline]
    fn montgomery_reduce(t: [u64; 8]) -> Self {
        let [r0, r1, r2, r3, r4, r5, r6, r7] = t;

        let k = r0.wrapping_mul(P::INV);
        let (_, carry) = mac(r0, k, P::MODULUS[0], 0);
        let (r1, carry) = mac(r1, k, P::MODULUS[1], carry);
        let (r2, carry) = mac(r2, k, P::MODULUS[2], carry);
        let (r3, carry) = mac(r3, k, P::MODULUS[3], carry);
        let (r4, carry2) = adc(r4, 0, carry);

        let k = r1.wrapping_mul(P::INV);
        let (_, carry) = mac(r1, k, P::MODULUS[0], 0);
        let (r2, carry) = mac(r2, k, P::MODULUS[1], carry);
        let (r3, carry) = mac(r3, k, P::MODULUS[2], carry);
        let (r4, carry) = mac(r4, k, P::MODULUS[3], carry);
        let (r5, carry2) = adc(r5, carry2, carry);

        let k = r2.wrapping_mul(P::INV);
        let (_, carry) = mac(r2, k, P::MODULUS[0], 0);
        let (r3, carry) = mac(r3, k, P::MODULUS[1], carry);
        let (r4, carry) = mac(r4, k, P::MODULUS[2], carry);
        let (r5, carry) = mac(r5, k, P::MODULUS[3], carry);
        let (r6, carry2) = adc(r6, carry2, carry);

        let k = r3.wrapping_mul(P::INV);
        let (_, carry) = mac(r3, k, P::MODULUS[0], 0);
        let (r4, carry) = mac(r4, k, P::MODULUS[1], carry);
        let (r5, carry) = mac(r5, k, P::MODULUS[2], carry);
        let (r6, carry) = mac(r6, k, P::MODULUS[3], carry);
        let (r7, _) = adc(r7, carry2, carry);

        Fp([r4, r5, r6, r7], PhantomData).subtract_p()
    }

    #[inline]
    fn mul_internal(&self, rhs: &Self) -> Self {
        let (t0, carry) = mac(0, self.0[0], rhs.0[0], 0);
        let (t1, carry) = mac(0, self.0[0], rhs.0[1], carry);
        let (t2, carry) = mac(0, self.0[0], rhs.0[2], carry);
        let (t3, t4) = mac(0, self.0[0], rhs.0[3], carry);

        let (t1, carry) = mac(t1, self.0[1], rhs.0[0], 0);
        let (t2, carry) = mac(t2, self.0[1], rhs.0[1], carry);
        let (t3, carry) = mac(t3, self.0[1], rhs.0[2], carry);
        let (t4, t5) = mac(t4, self.0[1], rhs.0[3], carry);

        let (t2, carry) = mac(t2, self.0[2], rhs.0[0], 0);
        let (t3, carry) = mac(t3, self.0[2], rhs.0[1], carry);
        let (t4, carry) = mac(t4, self.0[2], rhs.0[2], carry);
        let (t5, t6) = mac(t5, self.0[2], rhs.0[3], carry);

        let (t3, carry) = mac(t3, self.0[3], rhs.0[0], 0);
        let (t4, carry) = mac(t4, self.0[3], rhs.0[1], carry);
        let (t5, carry) = mac(t5, self.0[3], rhs.0[2], carry);
        let (t6, t7) = mac(t6, self.0[3], rhs.0[3], carry);

        Self::montgomery_reduce([t0, t1, t2, t3, t4, t5, t6, t7])
    }

    #[inline]
    fn add_internal(&self, rhs: &Self) -> Self {
        let (d0, carry) = adc(self.0[0], rhs.0[0], 0);
        let (d1, carry) = adc(self.0[1], rhs.0[1], carry);
        let (d2, carry) = adc(self.0[2], rhs.0[2], carry);
        let (d3, _) = adc(self.0[3], rhs.0[3], carry);
        Fp([d0, d1, d2, d3], PhantomData).subtract_p()
    }

    #[inline]
    fn sub_internal(&self, rhs: &Self) -> Self {
        let (d0, borrow) = sbb(self.0[0], rhs.0[0], 0);
        let (d1, borrow) = sbb(self.0[1], rhs.0[1], borrow);
        let (d2, borrow) = sbb(self.0[2], rhs.0[2], borrow);
        let (d3, borrow) = sbb(self.0[3], rhs.0[3], borrow);
        // If we underflowed, add back the modulus (borrow is an all-ones mask).
        let (d0, carry) = adc(d0, P::MODULUS[0] & borrow, 0);
        let (d1, carry) = adc(d1, P::MODULUS[1] & borrow, carry);
        let (d2, carry) = adc(d2, P::MODULUS[2] & borrow, carry);
        let (d3, _) = adc(d3, P::MODULUS[3] & borrow, carry);
        Fp([d0, d1, d2, d3], PhantomData)
    }

    #[inline]
    fn neg_internal(&self) -> Self {
        let (d0, borrow) = sbb(P::MODULUS[0], self.0[0], 0);
        let (d1, borrow) = sbb(P::MODULUS[1], self.0[1], borrow);
        let (d2, borrow) = sbb(P::MODULUS[2], self.0[2], borrow);
        let (d3, _) = sbb(P::MODULUS[3], self.0[3], borrow);
        // Mask to zero when the input was zero.
        let mask = if crate::arith::is_zero_4(&self.0) {
            0
        } else {
            u64::MAX
        };
        Fp([d0 & mask, d1 & mask, d2 & mask, d3 & mask], PhantomData)
    }

    /// Exponentiation by the modulus minus two (Fermat inversion helper).
    fn pow_p_minus_2(&self) -> Self {
        let (m, _) = crate::arith::sub_4(&P::MODULUS, &[2, 0, 0, 0]);
        Field::pow(self, &m)
    }
}

impl<P: FpParams> Default for Fp<P> {
    fn default() -> Self {
        Self::zero_const()
    }
}

impl<P: FpParams> PartialEq for Fp<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: FpParams> Eq for Fp<P> {}

impl<P: FpParams> Hash for Fp<P> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl<P: FpParams> PartialOrd for Fp<P> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: FpParams> Ord for Fp<P> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        let a = self.to_canonical();
        let b = other.to_canonical();
        if a == b {
            core::cmp::Ordering::Equal
        } else if lt_4(&a, &b) {
            core::cmp::Ordering::Less
        } else {
            core::cmp::Ordering::Greater
        }
    }
}

impl<P: FpParams> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.to_canonical();
        write!(f, "Fp(0x")?;
        for limb in c.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl<P: FpParams> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.to_canonical();
        if c[1] == 0 && c[2] == 0 && c[3] == 0 {
            write!(f, "{}", c[0])
        } else {
            write!(f, "0x")?;
            for limb in c.iter().rev() {
                write!(f, "{limb:016x}")?;
            }
            Ok(())
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $internal:ident) => {
        impl<P: FpParams> $trait for Fp<P> {
            type Output = Fp<P>;
            #[inline]
            fn $method(self, rhs: Fp<P>) -> Fp<P> {
                self.$internal(&rhs)
            }
        }
        impl<'a, P: FpParams> $trait<&'a Fp<P>> for Fp<P> {
            type Output = Fp<P>;
            #[inline]
            fn $method(self, rhs: &'a Fp<P>) -> Fp<P> {
                self.$internal(rhs)
            }
        }
        impl<'a, 'b, P: FpParams> $trait<&'b Fp<P>> for &'a Fp<P> {
            type Output = Fp<P>;
            #[inline]
            fn $method(self, rhs: &'b Fp<P>) -> Fp<P> {
                self.$internal(rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_internal);
impl_binop!(Sub, sub, sub_internal);
impl_binop!(Mul, mul, mul_internal);

impl<P: FpParams> AddAssign for Fp<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = self.add_internal(&rhs);
    }
}
impl<P: FpParams> SubAssign for Fp<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.sub_internal(&rhs);
    }
}
impl<P: FpParams> MulAssign for Fp<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = self.mul_internal(&rhs);
    }
}

impl<P: FpParams> Neg for Fp<P> {
    type Output = Fp<P>;
    #[inline]
    fn neg(self) -> Fp<P> {
        self.neg_internal()
    }
}

impl<P: FpParams> Sum for Fp<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero_const(), |acc, x| acc + x)
    }
}

impl<P: FpParams> Product for Fp<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(<Self as Field>::one(), |acc, x| acc * x)
    }
}

impl<P: FpParams> From<u64> for Fp<P> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl<P: FpParams> Field for Fp<P> {
    fn zero() -> Self {
        Self::zero_const()
    }

    fn one() -> Self {
        Fp(P::R, PhantomData)
    }

    fn is_zero(&self) -> bool {
        crate::arith::is_zero_4(&self.0)
    }

    fn square(&self) -> Self {
        self.mul_internal(self)
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow_p_minus_2())
        }
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let mut limbs = [0u64; 4];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // Mask away bits above the modulus to make rejection fast.
            let shift = 256 - P::MODULUS_BITS;
            limbs[3] &= u64::MAX >> shift.min(64);
            if lt_4(&limbs, &P::MODULUS) {
                // Convert canonical -> Montgomery.
                return Fp(limbs, PhantomData) * Fp(P::R2, PhantomData);
            }
        }
    }
}

impl<P: FpParams> PrimeField for Fp<P> {
    const MODULUS: [u64; 4] = P::MODULUS;
    const MODULUS_BITS: u32 = P::MODULUS_BITS;
    const TWO_ADICITY: u32 = P::TWO_ADICITY;

    fn from_u64(v: u64) -> Self {
        Fp([v, 0, 0, 0], PhantomData) * Fp(P::R2, PhantomData)
    }

    fn to_canonical(&self) -> [u64; 4] {
        Self::montgomery_reduce([self.0[0], self.0[1], self.0[2], self.0[3], 0, 0, 0, 0]).0
    }

    fn from_canonical(limbs: [u64; 4]) -> Option<Self> {
        if lt_4(&limbs, &P::MODULUS) {
            Some(Fp(limbs, PhantomData) * Fp(P::R2, PhantomData))
        } else {
            None
        }
    }

    fn multiplicative_generator() -> Self {
        Self::from_canonical_reduced(P::GENERATOR)
    }

    fn root_of_unity() -> Self {
        Self::from_canonical_reduced(P::ROOT_OF_UNITY)
    }
}

/// Square root in fields where the modulus is `3 mod 4`, via `x^{(p+1)/4}`.
///
/// Returns `None` if the element is a non-residue.
pub fn sqrt_3mod4<P: FpParams>(x: &Fp<P>, p_plus_one_div_four: &[u64; 4]) -> Option<Fp<P>> {
    if x.is_zero() {
        return Some(*x);
    }
    let cand = Field::pow(x, p_plus_one_div_four);
    if cand.square() == *x {
        Some(cand)
    } else {
        None
    }
}

/// Returns true iff bit `i` of the canonical form of `x` is set.
pub fn canonical_bit<P: FpParams>(x: &Fp<P>, i: u32) -> bool {
    bit_4(&x.to_canonical(), i)
}
