//! Tiny scoped-thread helpers shared by the parallel polynomial kernels
//! (FFT butterflies, multilinear folds, power distribution).

/// Number of worker threads worth spawning on this machine.
pub(crate) fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Splits `data` into at most `threads` contiguous chunks of at least
/// `min_len` elements and runs `f(offset, chunk)` on each, in parallel when
/// more than one chunk results. `f` must be pure data-parallel: chunks are
/// disjoint and no ordering is guaranteed.
pub(crate) fn for_chunks_mut<T: Send, F>(data: &mut [T], min_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    let n = data.len();
    let chunks = threads.min(n / min_len.max(1)).max(1);
    if chunks <= 1 {
        f(0, data);
        return;
    }
    let chunk_len = n.div_ceil(chunks);
    crossbeam::thread::scope(|s| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            s.spawn(move |_| f(i * chunk_len, chunk));
        }
    })
    .expect("parallel chunk worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_map_covers_every_index() {
        let mut data = vec![0usize; 1000];
        for_chunks_mut(&mut data, 16, 4, |off, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = off + k;
            }
        });
        assert!(data.iter().enumerate().all(|(i, v)| *v == i));
    }

    #[test]
    fn small_input_stays_single_chunk() {
        let mut data = vec![1u64; 8];
        for_chunks_mut(&mut data, 16, 8, |off, chunk| {
            assert_eq!(off, 0);
            assert_eq!(chunk.len(), 8);
        });
    }
}
