//! Low-level 64-bit limb arithmetic primitives shared by all field
//! implementations.
//!
//! The conventions follow the widely used "full-width carry" style: carries
//! are propagated as full `u64` words and borrows are propagated as all-ones
//! masks, which lets higher layers use branch-free conditional additions.

/// Compute `a + b + carry`, returning the result and the new carry word.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + (b as u128) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

/// Compute `a - (b + borrow)`, returning the result and the new borrow.
///
/// The borrow-in is interpreted through its top bit (so both `1` and the
/// all-ones mask count as "borrow"); the borrow-out is `0` or `u64::MAX`.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let ret = (a as u128).wrapping_sub((b as u128) + ((borrow >> 63) as u128));
    (ret as u64, (ret >> 64) as u64)
}

/// Compute `a + (b * c) + carry`, returning the result and the new carry.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let ret = (a as u128) + ((b as u128) * (c as u128)) + (carry as u128);
    (ret as u64, (ret >> 64) as u64)
}

/// Compare two 4-limb little-endian integers: `true` iff `a < b`.
#[inline]
pub const fn lt_4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    let mut i = 3;
    loop {
        if a[i] < b[i] {
            return true;
        }
        if a[i] > b[i] {
            return false;
        }
        if i == 0 {
            return false;
        }
        i -= 1;
    }
}

/// Add two 4-limb integers, returning the sum and the carry-out bit.
#[inline]
pub const fn add_4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (d0, c) = adc(a[0], b[0], 0);
    let (d1, c) = adc(a[1], b[1], c);
    let (d2, c) = adc(a[2], b[2], c);
    let (d3, c) = adc(a[3], b[3], c);
    ([d0, d1, d2, d3], c)
}

/// Subtract two 4-limb integers, returning the difference and the borrow mask.
#[inline]
pub const fn sub_4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (d0, bw) = sbb(a[0], b[0], 0);
    let (d1, bw) = sbb(a[1], b[1], bw);
    let (d2, bw) = sbb(a[2], b[2], bw);
    let (d3, bw) = sbb(a[3], b[3], bw);
    ([d0, d1, d2, d3], bw)
}

/// Test whether a 4-limb integer is zero.
#[inline]
pub const fn is_zero_4(a: &[u64; 4]) -> bool {
    a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0
}

/// Number of significant bits in a 4-limb little-endian integer.
#[inline]
pub const fn num_bits_4(a: &[u64; 4]) -> u32 {
    let mut i = 3usize;
    loop {
        if a[i] != 0 {
            return 64 * (i as u32) + (64 - a[i].leading_zeros());
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Get bit `i` (little-endian) of a 4-limb integer.
#[inline]
pub const fn bit_4(a: &[u64; 4], i: u32) -> bool {
    if i >= 256 {
        return false;
    }
    (a[(i / 64) as usize] >> (i % 64)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(1, 2, 3), (6, 0));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
    }

    #[test]
    fn sbb_borrows() {
        let (d, b) = sbb(0, 1, 0);
        assert_eq!(d, u64::MAX);
        assert_eq!(b, u64::MAX);
        let (d, b) = sbb(5, 3, 0);
        assert_eq!(d, 2);
        assert_eq!(b, 0);
        // borrow-in of a full mask behaves like borrow of 1
        let (d, b) = sbb(5, 3, u64::MAX);
        assert_eq!(d, 1);
        assert_eq!(b, 0);
    }

    #[test]
    fn mac_widening() {
        let (lo, hi) = mac(0, u64::MAX, u64::MAX, 0);
        assert_eq!(lo, 1);
        assert_eq!(hi, u64::MAX - 1);
    }

    #[test]
    fn cmp_and_bits() {
        let a = [1, 0, 0, 0];
        let b = [0, 1, 0, 0];
        assert!(lt_4(&a, &b));
        assert!(!lt_4(&b, &a));
        assert!(!lt_4(&a, &a));
        assert_eq!(num_bits_4(&a), 1);
        assert_eq!(num_bits_4(&b), 65);
        assert_eq!(num_bits_4(&[0, 0, 0, 0]), 0);
        assert!(bit_4(&b, 64));
        assert!(!bit_4(&b, 63));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [u64::MAX, 5, 7, 9];
        let b = [3, 4, 5, 6];
        let (s, c) = add_4(&a, &b);
        assert_eq!(c, 0);
        let (d, bw) = sub_4(&s, &b);
        assert_eq!(bw, 0);
        assert_eq!(d, a);
    }
}
