//! Core algebraic traits used across the zkVC stack.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

/// An element of a finite field.
///
/// Every proof system in this workspace is generic over this trait, so the
/// same R1CS/QAP/sum-check machinery can run over the scalar field `Fr`, the
/// base field `Fq` or the quadratic extension `Fq2`.
pub trait Field:
    Sized
    + Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + for<'a> Add<&'a Self, Output = Self>
    + for<'a> Sub<&'a Self, Output = Self>
    + for<'a> Mul<&'a Self, Output = Self>
    + Sum<Self>
    + Product<Self>
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Returns `true` iff this element is the additive identity.
    fn is_zero(&self) -> bool;

    /// Returns `true` iff this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// Squares the element.
    fn square(&self) -> Self;

    /// Doubles the element.
    fn double(&self) -> Self {
        *self + *self
    }

    /// Multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Exponentiation by a little-endian slice of 64-bit limbs.
    fn pow(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut found_one = false;
        for limb in exp.iter().rev() {
            for i in (0..64).rev() {
                if found_one {
                    res = res.square();
                }
                if (limb >> i) & 1 == 1 {
                    found_one = true;
                    res *= *self;
                }
            }
        }
        res
    }

    /// Samples a uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A prime field of 4 x 64-bit limbs with an FFT-friendly multiplicative
/// subgroup.
pub trait PrimeField: Field + Ord + PartialOrd + From<u64> {
    /// The field modulus as little-endian limbs.
    const MODULUS: [u64; 4];
    /// Number of significant bits of the modulus.
    const MODULUS_BITS: u32;
    /// Largest `s` such that `2^s` divides `modulus - 1`.
    const TWO_ADICITY: u32;
    /// Capacity in bits usable for embedding integers without overflow
    /// (`MODULUS_BITS - 1`).
    const CAPACITY: u32 = Self::MODULUS_BITS - 1;

    /// Constructs an element from a `u64`.
    fn from_u64(v: u64) -> Self;

    /// Constructs an element from a `u128`.
    fn from_u128(v: u128) -> Self {
        Self::from_u64((v >> 64) as u64) * Self::from_u64(1u64 << 32) * Self::from_u64(1u64 << 32)
            + Self::from_u64(v as u64)
    }

    /// Constructs an element from a signed integer (negative values map to
    /// `modulus - |v|`).
    fn from_i64(v: i64) -> Self {
        if v < 0 {
            -Self::from_u64(v.unsigned_abs())
        } else {
            Self::from_u64(v as u64)
        }
    }

    /// The canonical (non-Montgomery) little-endian limb representation.
    fn to_canonical(&self) -> [u64; 4];

    /// Builds an element from a canonical little-endian limb representation.
    ///
    /// Returns `None` if the value is not reduced modulo the field modulus.
    fn from_canonical(limbs: [u64; 4]) -> Option<Self>;

    /// Canonical little-endian byte representation (32 bytes).
    fn to_bytes_le(&self) -> [u8; 32] {
        let limbs = self.to_canonical();
        let mut out = [0u8; 32];
        for (i, l) in limbs.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Parses a canonical little-endian byte representation.
    fn from_bytes_le(bytes: &[u8; 32]) -> Option<Self> {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *limb = u64::from_le_bytes(b);
        }
        Self::from_canonical(limbs)
    }

    /// Reduces an arbitrary 32-byte string into the field (not necessarily
    /// canonical input); used for Fiat-Shamir challenge derivation.
    fn from_bytes_le_mod_order(bytes: &[u8; 32]) -> Self {
        // Horner evaluation in base 256, starting from the most significant
        // byte, so arbitrary byte strings reduce correctly modulo the field.
        let radix = Self::from_u64(256);
        let mut acc = Self::zero();
        for b in bytes.iter().rev() {
            acc = acc * radix + Self::from_u64(*b as u64);
        }
        acc
    }

    /// Builds an element from limbs known (by the caller) to be `< modulus`.
    ///
    /// # Panics
    /// Panics if the limbs are not reduced.
    fn from_canonical_reduced(limbs: [u64; 4]) -> Self {
        Self::from_canonical(limbs).expect("limbs must be reduced modulo the field modulus")
    }

    /// A fixed multiplicative generator of the field.
    fn multiplicative_generator() -> Self;

    /// A primitive `2^TWO_ADICITY`-th root of unity.
    fn root_of_unity() -> Self;

    /// A primitive `n`-th root of unity, for `n` a power of two dividing
    /// `2^TWO_ADICITY`.
    fn nth_root_of_unity(n: u64) -> Option<Self> {
        if !n.is_power_of_two() {
            return None;
        }
        let log_n = n.trailing_zeros();
        if log_n > Self::TWO_ADICITY {
            return None;
        }
        let mut omega = Self::root_of_unity();
        for _ in log_n..Self::TWO_ADICITY {
            omega = omega.square();
        }
        Some(omega)
    }

    /// Number of bits in the canonical representation of this element.
    fn num_bits(&self) -> u32 {
        crate::arith::num_bits_4(&self.to_canonical())
    }

    /// Returns bit `i` of the canonical representation.
    fn bit(&self, i: u32) -> bool {
        crate::arith::bit_4(&self.to_canonical(), i)
    }

    /// Interprets the canonical value as `u64` if it fits.
    fn as_u64(&self) -> Option<u64> {
        let c = self.to_canonical();
        if c[1] == 0 && c[2] == 0 && c[3] == 0 {
            Some(c[0])
        } else {
            None
        }
    }
}

/// Batch-inverts a slice of field elements using Montgomery's trick.
///
/// Zero entries are left untouched. Runs in `O(n)` multiplications plus a
/// single inversion.
pub fn batch_inverse<F: Field>(elems: &mut [F]) {
    let mut prod = Vec::with_capacity(elems.len());
    let mut acc = F::one();
    for e in elems.iter() {
        if !e.is_zero() {
            acc *= *e;
        }
        prod.push(acc);
    }
    let Some(mut inv) = acc.inverse() else {
        return; // all elements zero
    };
    for i in (0..elems.len()).rev() {
        if elems[i].is_zero() {
            continue;
        }
        let prev = if i == 0 {
            F::one()
        } else {
            // product of all non-zero elements before i
            prod[i - 1]
        };
        let new = inv * prev;
        inv *= elems[i];
        elems[i] = new;
    }
}

#[cfg(test)]
mod tests {
    // Trait-level behaviour is exercised through the concrete fields in
    // `crate::fields::tests`.
}
