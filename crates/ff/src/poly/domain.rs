//! Radix-2 FFT evaluation domains over a prime field.
//!
//! A domain of size `n = 2^k` is the set of `n`-th roots of unity
//! `{1, w, w^2, ...}`. It supports forward/inverse FFTs, evaluation of the
//! vanishing polynomial `Z(X) = X^n - 1`, Lagrange-coefficient computation
//! and coset FFTs — everything the QAP reduction and the Groth16 prover need.

use crate::traits::PrimeField;

/// A multiplicative subgroup of order `2^k` used for polynomial interpolation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvaluationDomain<F: PrimeField> {
    size: usize,
    log_size: u32,
    /// Primitive `size`-th root of unity.
    pub group_gen: F,
    /// Inverse of `group_gen`.
    pub group_gen_inv: F,
    /// `size` as a field element, inverted (for iFFT normalisation).
    pub size_inv: F,
    /// Multiplicative coset shift used by [`Self::coset_fft_in_place`].
    pub coset_shift: F,
}

impl<F: PrimeField> EvaluationDomain<F> {
    /// Creates the smallest power-of-two domain with at least `min_size`
    /// elements, or `None` if the field's 2-adicity is insufficient.
    pub fn new(min_size: usize) -> Option<Self> {
        let size = min_size.max(1).next_power_of_two();
        let log_size = size.trailing_zeros();
        if log_size > F::TWO_ADICITY {
            return None;
        }
        let group_gen = F::nth_root_of_unity(size as u64)?;
        let group_gen_inv = group_gen.inverse()?;
        let size_inv = F::from_u64(size as u64).inverse()?;
        Some(EvaluationDomain {
            size,
            log_size,
            group_gen,
            group_gen_inv,
            size_inv,
            coset_shift: F::multiplicative_generator(),
        })
    }

    /// The number of elements in the domain.
    pub fn size(&self) -> usize {
        self.size
    }

    /// log2 of the domain size.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// The `i`-th domain element `w^i`.
    pub fn element(&self, i: usize) -> F {
        self.group_gen.pow(&[i as u64])
    }

    /// All domain elements in order.
    pub fn elements(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.size);
        let mut cur = F::one();
        for _ in 0..self.size {
            out.push(cur);
            cur *= self.group_gen;
        }
        out
    }

    /// Evaluates the vanishing polynomial `Z(X) = X^n - 1` at `x`.
    pub fn evaluate_vanishing_polynomial(&self, x: &F) -> F {
        x.pow(&[self.size as u64]) - F::one()
    }

    /// In-place forward FFT: coefficients -> evaluations over the domain.
    ///
    /// # Panics
    /// Panics if `values.len() != self.size()`.
    pub fn fft_in_place(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "FFT input must match domain size");
        Self::radix2_fft(values, self.group_gen);
    }

    /// In-place inverse FFT: evaluations -> coefficients.
    pub fn ifft_in_place(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "iFFT input must match domain size");
        Self::radix2_fft(values, self.group_gen_inv);
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    /// Forward FFT over the coset `shift * H`.
    pub fn coset_fft_in_place(&self, values: &mut [F]) {
        Self::distribute_powers(values, self.coset_shift);
        self.fft_in_place(values);
    }

    /// Inverse FFT over the coset `shift * H`.
    pub fn coset_ifft_in_place(&self, values: &mut [F]) {
        self.ifft_in_place(values);
        let shift_inv = self.coset_shift.inverse().expect("coset shift is non-zero");
        Self::distribute_powers(values, shift_inv);
    }

    /// Evaluates the vanishing polynomial on the coset `shift * H`, where it
    /// is the constant `shift^n - 1`.
    pub fn vanishing_on_coset(&self) -> F {
        self.coset_shift.pow(&[self.size as u64]) - F::one()
    }

    /// Evaluates all `n` Lagrange basis polynomials at the point `tau`.
    ///
    /// `L_i(tau) = Z(tau) / (n * (tau - w^i)) * w^i`.
    pub fn lagrange_coefficients_at(&self, tau: &F) -> Vec<F> {
        let z = self.evaluate_vanishing_polynomial(tau);
        if z.is_zero() {
            // tau is in the domain: indicator vector.
            return self
                .elements()
                .iter()
                .map(|e| if e == tau { F::one() } else { F::zero() })
                .collect();
        }
        let mut denoms: Vec<F> = self.elements().iter().map(|e| *tau - *e).collect();
        crate::traits::batch_inverse(&mut denoms);
        let zn = z * self.size_inv;
        self.elements()
            .iter()
            .zip(denoms.iter())
            .map(|(e, d)| zn * *e * *d)
            .collect()
    }

    /// Interpolates evaluations over the domain into coefficient form.
    pub fn interpolate(&self, mut evals: Vec<F>) -> Vec<F> {
        evals.resize(self.size, F::zero());
        self.ifft_in_place(&mut evals);
        evals
    }

    /// Evaluates coefficient-form polynomial over the whole domain.
    pub fn evaluate_all(&self, coeffs: &[F]) -> Vec<F> {
        let mut vals = coeffs.to_vec();
        vals.resize(self.size, F::zero());
        self.fft_in_place(&mut vals);
        vals
    }

    fn distribute_powers(values: &mut [F], g: F) {
        let mut pow = F::one();
        for v in values.iter_mut() {
            *v *= pow;
            pow *= g;
        }
    }

    /// Iterative in-place Cooley-Tukey radix-2 FFT.
    fn radix2_fft(values: &mut [F], omega: F) {
        let n = values.len();
        let log_n = n.trailing_zeros();
        debug_assert_eq!(1 << log_n, n);

        // bit-reversal permutation
        for i in 0..n as u64 {
            let r = i.reverse_bits() >> (64 - log_n);
            if i < r {
                values.swap(i as usize, r as usize);
            }
        }

        let mut m = 1usize;
        for _ in 0..log_n {
            let w_m = omega.pow(&[(n / (2 * m)) as u64]);
            let mut k = 0;
            while k < n {
                let mut w = F::one();
                for j in 0..m {
                    let t = values[k + j + m] * w;
                    let u = values[k + j];
                    values[k + j] = u + t;
                    values[k + j + m] = u - t;
                    w *= w_m;
                }
                k += 2 * m;
            }
            m *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr;
    use crate::poly::DensePolynomial;
    use crate::traits::Field;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domain_sizes() {
        assert_eq!(EvaluationDomain::<Fr>::new(1).unwrap().size(), 1);
        assert_eq!(EvaluationDomain::<Fr>::new(3).unwrap().size(), 4);
        assert_eq!(EvaluationDomain::<Fr>::new(16).unwrap().size(), 16);
        assert_eq!(EvaluationDomain::<Fr>::new(17).unwrap().size(), 32);
        // The field supports 2^32; anything above that must fail.
        assert!(EvaluationDomain::<Fr>::new(1usize << 33).is_none());
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let domain = EvaluationDomain::<Fr>::new(64).unwrap();
        let original: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        domain.fft_in_place(&mut v);
        domain.ifft_in_place(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn coset_fft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let domain = EvaluationDomain::<Fr>::new(32).unwrap();
        let original: Vec<Fr> = (0..32).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        domain.coset_fft_in_place(&mut v);
        domain.coset_ifft_in_place(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn fft_agrees_with_direct_evaluation() {
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let coeffs: Vec<Fr> = (1..=8).map(Fr::from_u64).collect();
        let poly = DensePolynomial::from_coeffs(coeffs.clone());
        let evals = domain.evaluate_all(&coeffs);
        for (i, e) in evals.iter().enumerate() {
            assert_eq!(*e, poly.evaluate(&domain.element(i)));
        }
    }

    #[test]
    fn vanishing_polynomial_zero_on_domain() {
        let domain = EvaluationDomain::<Fr>::new(16).unwrap();
        for e in domain.elements() {
            assert!(domain.evaluate_vanishing_polynomial(&e).is_zero());
        }
        assert!(!domain
            .evaluate_vanishing_polynomial(&Fr::from_u64(12345))
            .is_zero());
        // On the coset, the vanishing polynomial is the nonzero constant.
        let c = domain.vanishing_on_coset();
        assert!(!c.is_zero());
        let x = domain.coset_shift * domain.element(3);
        assert_eq!(domain.evaluate_vanishing_polynomial(&x), c);
    }

    #[test]
    fn lagrange_coefficients_interpolate() {
        let mut rng = StdRng::seed_from_u64(9);
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let coeffs = domain.interpolate(evals.clone());
        let poly = DensePolynomial::from_coeffs(coeffs);
        let tau = Fr::random(&mut rng);
        let lag = domain.lagrange_coefficients_at(&tau);
        let via_lagrange: Fr = lag.iter().zip(evals.iter()).map(|(l, e)| *l * *e).sum();
        assert_eq!(via_lagrange, poly.evaluate(&tau));
    }

    #[test]
    fn lagrange_at_domain_point_is_indicator() {
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let tau = domain.element(5);
        let lag = domain.lagrange_coefficients_at(&tau);
        for (i, l) in lag.iter().enumerate() {
            assert_eq!(*l, if i == 5 { Fr::one() } else { Fr::zero() });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_interpolate_evaluate_roundtrip(vals in prop::collection::vec(0u64..1_000_000, 1..33)) {
            let domain = EvaluationDomain::<Fr>::new(vals.len()).unwrap();
            let evals: Vec<Fr> = vals.iter().map(|v| Fr::from_u64(*v))
                .chain(std::iter::repeat(Fr::zero()))
                .take(domain.size())
                .collect();
            let coeffs = domain.interpolate(evals.clone());
            let back = domain.evaluate_all(&coeffs);
            prop_assert_eq!(back, evals);
        }
    }
}
