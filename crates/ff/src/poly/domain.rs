//! Radix-2 FFT evaluation domains over a prime field.
//!
//! A domain of size `n = 2^k` is the set of `n`-th roots of unity
//! `{1, w, w^2, ...}`. It supports forward/inverse FFTs, evaluation of the
//! vanishing polynomial `Z(X) = X^n - 1`, Lagrange-coefficient computation
//! and coset FFTs — everything the QAP reduction and the Groth16 prover need.
//!
//! Construction precomputes the forward and inverse twiddle tables (the
//! first `n/2` powers of the group generator and of its inverse), so every
//! FFT over the domain does one table lookup per butterfly instead of a
//! running multiplication, and [`EvaluationDomain::element`] answers in
//! `O(1)`. Domains are meant to be built once per circuit shape and reused
//! — the Groth16 `ProvingKey` carries its quotient-domain instance so the
//! runtime key cache amortises the tables across every proof of a shape.
//! Large FFTs additionally split the butterfly work across scoped worker
//! threads.

use crate::par::{for_chunks_mut, num_threads};
use crate::traits::PrimeField;

/// Below this size a parallel FFT is all spawn overhead.
const PAR_FFT_MIN: usize = 1 << 12;
/// Minimum elements per thread for the data-parallel loops (power
/// distribution, iFFT normalisation).
const PAR_CHUNK_MIN: usize = 1 << 12;

/// A multiplicative subgroup of order `2^k` used for polynomial interpolation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvaluationDomain<F: PrimeField> {
    size: usize,
    log_size: u32,
    /// Primitive `size`-th root of unity.
    pub group_gen: F,
    /// Inverse of `group_gen`.
    pub group_gen_inv: F,
    /// `size` as a field element, inverted (for iFFT normalisation).
    pub size_inv: F,
    /// Multiplicative coset shift used by [`Self::coset_fft_in_place`].
    pub coset_shift: F,
    /// `[w^0, w^1, ..., w^{n/2-1}]` — forward FFT twiddles.
    twiddles: Vec<F>,
    /// `[w^0, w^-1, ..., w^-(n/2-1)]` — inverse FFT twiddles.
    inv_twiddles: Vec<F>,
}

impl<F: PrimeField> EvaluationDomain<F> {
    /// Creates the smallest power-of-two domain with at least `min_size`
    /// elements, or `None` if the field's 2-adicity is insufficient.
    ///
    /// Costs `O(n)` multiplications for the twiddle tables; build a domain
    /// once per shape and reuse it across FFT calls.
    pub fn new(min_size: usize) -> Option<Self> {
        let size = min_size.max(1).next_power_of_two();
        let log_size = size.trailing_zeros();
        if log_size > F::TWO_ADICITY {
            return None;
        }
        let group_gen = F::nth_root_of_unity(size as u64)?;
        let group_gen_inv = group_gen.inverse()?;
        let size_inv = F::from_u64(size as u64).inverse()?;
        Some(EvaluationDomain {
            size,
            log_size,
            group_gen,
            group_gen_inv,
            size_inv,
            coset_shift: F::multiplicative_generator(),
            twiddles: power_table(group_gen, size / 2),
            inv_twiddles: power_table(group_gen_inv, size / 2),
        })
    }

    /// The number of elements in the domain.
    pub fn size(&self) -> usize {
        self.size
    }

    /// log2 of the domain size.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// The `i`-th domain element `w^(i mod n)`, answered from the twiddle
    /// table in `O(1)` (the second half of the domain is the negation of
    /// the first, since `w^(n/2) = -1`).
    pub fn element(&self, i: usize) -> F {
        let i = i & (self.size - 1);
        if i < self.twiddles.len() {
            self.twiddles[i]
        } else if i == 0 {
            F::one() // size 1: empty table
        } else {
            -self.twiddles[i - self.twiddles.len()]
        }
    }

    /// All domain elements in order.
    pub fn elements(&self) -> Vec<F> {
        let mut out = Vec::with_capacity(self.size);
        let mut cur = F::one();
        for _ in 0..self.size {
            out.push(cur);
            cur *= self.group_gen;
        }
        out
    }

    /// Evaluates the vanishing polynomial `Z(X) = X^n - 1` at `x`.
    pub fn evaluate_vanishing_polynomial(&self, x: &F) -> F {
        x.pow(&[self.size as u64]) - F::one()
    }

    /// In-place forward FFT: coefficients -> evaluations over the domain.
    /// Splits the butterfly work across worker threads for large domains.
    ///
    /// The serial-vs-parallel choice comes from the installed
    /// [`crate::tune::FftParams`] decision table (static default: the
    /// historical `2^12` cutover); results are bit-identical either way.
    ///
    /// # Panics
    /// Panics if `values.len() != self.size()`.
    pub fn fft_in_place(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "FFT input must match domain size");
        // Mask first, thread count second: sizes the decision table keeps
        // serial never pay the `available_parallelism` syscall.
        if crate::tune::fft_params().allows_parallel(self.log_size) {
            let threads = num_threads();
            if threads > 1 {
                parallel_radix2_fft(values, &self.twiddles, threads);
                return;
            }
        }
        radix2_fft(values, &self.twiddles);
    }

    /// In-place inverse FFT: evaluations -> coefficients.
    pub fn ifft_in_place(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "iFFT input must match domain size");
        let threads = num_threads();
        if crate::tune::fft_params().parallel(self.log_size, threads) {
            parallel_radix2_fft(values, &self.inv_twiddles, threads);
        } else {
            radix2_fft(values, &self.inv_twiddles);
        }
        let size_inv = self.size_inv;
        for_chunks_mut(values, PAR_CHUNK_MIN, threads, |_, chunk| {
            for v in chunk.iter_mut() {
                *v *= size_inv;
            }
        });
    }

    /// Single-threaded forward FFT: the reference implementation the
    /// parallel path is property-tested (and benchmarked) against.
    pub fn fft_in_place_serial(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "FFT input must match domain size");
        radix2_fft(values, &self.twiddles);
    }

    /// Forward FFT forced onto the parallel kernel with an explicit
    /// thread count, regardless of the installed dispatch table. Used by
    /// the calibration probe and the benchmarks to time the parallel
    /// path directly; bit-identical to [`Self::fft_in_place_serial`].
    pub fn fft_in_place_parallel(&self, values: &mut [F], threads: usize) {
        assert_eq!(values.len(), self.size, "FFT input must match domain size");
        parallel_radix2_fft(values, &self.twiddles, threads.max(2));
    }

    /// Single-threaded inverse FFT (reference implementation).
    pub fn ifft_in_place_serial(&self, values: &mut [F]) {
        assert_eq!(values.len(), self.size, "iFFT input must match domain size");
        radix2_fft(values, &self.inv_twiddles);
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    /// Forward FFT over the coset `shift * H`.
    pub fn coset_fft_in_place(&self, values: &mut [F]) {
        Self::distribute_powers(values, self.coset_shift);
        self.fft_in_place(values);
    }

    /// Inverse FFT over the coset `shift * H`.
    pub fn coset_ifft_in_place(&self, values: &mut [F]) {
        self.ifft_in_place(values);
        let shift_inv = self.coset_shift.inverse().expect("coset shift is non-zero");
        Self::distribute_powers(values, shift_inv);
    }

    /// Evaluates the vanishing polynomial on the coset `shift * H`, where it
    /// is the constant `shift^n - 1`.
    pub fn vanishing_on_coset(&self) -> F {
        self.coset_shift.pow(&[self.size as u64]) - F::one()
    }

    /// Evaluates all `n` Lagrange basis polynomials at the point `tau`.
    ///
    /// `L_i(tau) = Z(tau) / (n * (tau - w^i)) * w^i`.
    pub fn lagrange_coefficients_at(&self, tau: &F) -> Vec<F> {
        let z = self.evaluate_vanishing_polynomial(tau);
        if z.is_zero() {
            // tau is in the domain: indicator vector.
            return self
                .elements()
                .iter()
                .map(|e| if e == tau { F::one() } else { F::zero() })
                .collect();
        }
        let mut denoms: Vec<F> = self.elements().iter().map(|e| *tau - *e).collect();
        crate::traits::batch_inverse(&mut denoms);
        let zn = z * self.size_inv;
        self.elements()
            .iter()
            .zip(denoms.iter())
            .map(|(e, d)| zn * *e * *d)
            .collect()
    }

    /// Interpolates evaluations over the domain into coefficient form.
    pub fn interpolate(&self, mut evals: Vec<F>) -> Vec<F> {
        evals.resize(self.size, F::zero());
        self.ifft_in_place(&mut evals);
        evals
    }

    /// Evaluates coefficient-form polynomial over the whole domain.
    pub fn evaluate_all(&self, coeffs: &[F]) -> Vec<F> {
        let mut vals = coeffs.to_vec();
        vals.resize(self.size, F::zero());
        self.fft_in_place(&mut vals);
        vals
    }

    /// Multiplies `values[i]` by `g^i`, in parallel for large inputs (each
    /// chunk starts from `g^offset` and runs its own running product).
    fn distribute_powers(values: &mut [F], g: F) {
        for_chunks_mut(values, PAR_CHUNK_MIN, num_threads(), |offset, chunk| {
            let mut pow = g.pow(&[offset as u64]);
            for v in chunk.iter_mut() {
                *v *= pow;
                pow *= g;
            }
        });
    }
}

/// `[1, g, g^2, ..., g^{len-1}]`.
fn power_table<F: PrimeField>(g: F, len: usize) -> Vec<F> {
    let mut out = Vec::with_capacity(len);
    let mut cur = F::one();
    for _ in 0..len {
        out.push(cur);
        cur *= g;
    }
    out
}

/// In-place bit-reversal permutation.
fn bit_reverse<F>(values: &mut [F]) {
    let n = values.len() as u64;
    if n <= 1 {
        return; // also avoids the 64-bit shift below overflowing
    }
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let r = i.reverse_bits() >> (64 - log_n);
        if i < r {
            values.swap(i as usize, r as usize);
        }
    }
}

/// One stage's worth of butterflies over paired slices: `lo[j]`/`hi[j]`
/// combine with twiddle `twiddles[(j0 + j) * stride]`.
fn butterflies<F: PrimeField>(
    lo: &mut [F],
    hi: &mut [F],
    twiddles: &[F],
    stride: usize,
    j0: usize,
) {
    for (j, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
        let t = *h * twiddles[(j0 + j) * stride];
        let u = *l;
        *l = u + t;
        *h = u - t;
    }
}

/// Iterative in-place Cooley-Tukey radix-2 FFT driven by a precomputed
/// twiddle table (`twiddles[j] = omega^j`, `values.len() / 2` entries):
/// one multiplication per butterfly, no per-stage root recomputation.
fn radix2_fft<F: PrimeField>(values: &mut [F], twiddles: &[F]) {
    let n = values.len();
    let log_n = n.trailing_zeros();
    debug_assert_eq!(1 << log_n, n);
    debug_assert_eq!(twiddles.len(), n / 2);

    bit_reverse(values);
    let mut m = 1usize;
    for _ in 0..log_n {
        // Cooperative cancellation point once per stage (log2(n) per FFT),
        // a no-op unless the proving pool installed a deadline check.
        crate::cancel::checkpoint();
        let stride = n / (2 * m);
        for block in values.chunks_mut(2 * m) {
            let (lo, hi) = block.split_at_mut(m);
            butterflies(lo, hi, twiddles, stride, 0);
        }
        m *= 2;
    }
}

/// Parallel radix-2 FFT. Two phases after the bit-reversal permutation:
///
/// 1. stages whose blocks fit inside one contiguous chunk run fully local
///    to a worker thread (no synchronisation between stages);
/// 2. the remaining `log2(chunks)` cross-chunk stages split every block's
///    butterfly range across the workers, one scope per stage.
///
/// Identical arithmetic to [`radix2_fft`] — field addition is exact, so
/// results are bit-equal regardless of thread count.
fn parallel_radix2_fft<F: PrimeField>(values: &mut [F], twiddles: &[F], threads: usize) {
    let n = values.len();
    // Power-of-two chunk count, at least two local stages per chunk.
    let chunks = threads
        .next_power_of_two()
        .min(n / PAR_FFT_MIN.min(n / 2).max(1))
        .max(1);
    if chunks <= 1 {
        radix2_fft(values, twiddles);
        return;
    }
    let chunk_len = n / chunks;

    bit_reverse(values);
    crate::cancel::checkpoint();

    // Phase 1: all stages with block size <= chunk_len, local per chunk.
    crossbeam::thread::scope(|s| {
        for chunk in values.chunks_mut(chunk_len) {
            s.spawn(move |_| {
                let mut m = 1usize;
                while 2 * m <= chunk_len {
                    let stride = n / (2 * m);
                    for block in chunk.chunks_mut(2 * m) {
                        let (lo, hi) = block.split_at_mut(m);
                        butterflies(lo, hi, twiddles, stride, 0);
                    }
                    m *= 2;
                }
            });
        }
    })
    .expect("fft worker panicked");

    // Phase 2: cross-chunk stages; split each block's butterflies. The
    // cancellation checkpoints sit on the orchestrating thread, between
    // stages — spawned workers are not joined individually, so they must
    // not raise the marker themselves (checkpoints there would be inert
    // anyway: thread locals do not propagate into scoped spawns).
    let mut m = chunk_len;
    while m < n {
        crate::cancel::checkpoint();
        let stride = n / (2 * m);
        let num_blocks = n / (2 * m);
        let pieces = (threads / num_blocks).max(1);
        let piece_len = (m / pieces).max(1);
        crossbeam::thread::scope(|s| {
            for block in values.chunks_mut(2 * m) {
                let (lo, hi) = block.split_at_mut(m);
                for (pi, (lp, hp)) in lo
                    .chunks_mut(piece_len)
                    .zip(hi.chunks_mut(piece_len))
                    .enumerate()
                {
                    s.spawn(move |_| butterflies(lp, hp, twiddles, stride, pi * piece_len));
                }
            }
        })
        .expect("fft worker panicked");
        m *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr;
    use crate::poly::DensePolynomial;
    use crate::traits::Field;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domain_sizes() {
        assert_eq!(EvaluationDomain::<Fr>::new(1).unwrap().size(), 1);
        assert_eq!(EvaluationDomain::<Fr>::new(3).unwrap().size(), 4);
        assert_eq!(EvaluationDomain::<Fr>::new(16).unwrap().size(), 16);
        assert_eq!(EvaluationDomain::<Fr>::new(17).unwrap().size(), 32);
        // The field supports 2^32; anything above that must fail.
        assert!(EvaluationDomain::<Fr>::new(1usize << 33).is_none());
    }

    #[test]
    fn element_is_constant_time_table_lookup() {
        for n in [1usize, 2, 8, 32, 64] {
            let domain = EvaluationDomain::<Fr>::new(n).unwrap();
            for i in 0..domain.size() {
                assert_eq!(
                    domain.element(i),
                    domain.group_gen.pow(&[i as u64]),
                    "n={n} i={i}"
                );
            }
            // Indices wrap around the domain (w^n = 1).
            assert_eq!(
                domain.element(domain.size() + 3),
                domain.element(3 % domain.size())
            );
        }
    }

    #[test]
    fn parallel_fft_matches_serial_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(77);
        for log_n in [6usize, 9, 13] {
            let n = 1usize << log_n;
            let domain = EvaluationDomain::<Fr>::new(n).unwrap();
            let original: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();

            let mut serial = original.clone();
            domain.fft_in_place_serial(&mut serial);
            for threads in [2usize, 3, 8] {
                let mut par = original.clone();
                parallel_radix2_fft(&mut par, &domain.twiddles, threads);
                assert_eq!(par, serial, "fft log_n={log_n} threads={threads}");
            }
            // The dispatching entry point agrees regardless of which path
            // it takes on this machine.
            let mut v = original.clone();
            domain.fft_in_place(&mut v);
            assert_eq!(v, serial);

            let mut iserial = original.clone();
            domain.ifft_in_place_serial(&mut iserial);
            let mut ipar = original.clone();
            parallel_radix2_fft(&mut ipar, &domain.inv_twiddles, 4);
            for x in &mut ipar {
                *x *= domain.size_inv;
            }
            assert_eq!(ipar, iserial, "ifft log_n={log_n}");
        }
    }

    #[test]
    fn size_one_domain_fft_is_identity() {
        let domain = EvaluationDomain::<Fr>::new(1).unwrap();
        let mut v = vec![Fr::from_u64(5)];
        domain.fft_in_place(&mut v);
        domain.ifft_in_place(&mut v);
        assert_eq!(v, vec![Fr::from_u64(5)]);
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let domain = EvaluationDomain::<Fr>::new(64).unwrap();
        let original: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        domain.fft_in_place(&mut v);
        domain.ifft_in_place(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn coset_fft_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let domain = EvaluationDomain::<Fr>::new(32).unwrap();
        let original: Vec<Fr> = (0..32).map(|_| Fr::random(&mut rng)).collect();
        let mut v = original.clone();
        domain.coset_fft_in_place(&mut v);
        domain.coset_ifft_in_place(&mut v);
        assert_eq!(v, original);
    }

    #[test]
    fn fft_agrees_with_direct_evaluation() {
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let coeffs: Vec<Fr> = (1..=8).map(Fr::from_u64).collect();
        let poly = DensePolynomial::from_coeffs(coeffs.clone());
        let evals = domain.evaluate_all(&coeffs);
        for (i, e) in evals.iter().enumerate() {
            assert_eq!(*e, poly.evaluate(&domain.element(i)));
        }
    }

    #[test]
    fn vanishing_polynomial_zero_on_domain() {
        let domain = EvaluationDomain::<Fr>::new(16).unwrap();
        for e in domain.elements() {
            assert!(domain.evaluate_vanishing_polynomial(&e).is_zero());
        }
        assert!(!domain
            .evaluate_vanishing_polynomial(&Fr::from_u64(12345))
            .is_zero());
        // On the coset, the vanishing polynomial is the nonzero constant.
        let c = domain.vanishing_on_coset();
        assert!(!c.is_zero());
        let x = domain.coset_shift * domain.element(3);
        assert_eq!(domain.evaluate_vanishing_polynomial(&x), c);
    }

    #[test]
    fn lagrange_coefficients_interpolate() {
        let mut rng = StdRng::seed_from_u64(9);
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let evals: Vec<Fr> = (0..8).map(|_| Fr::random(&mut rng)).collect();
        let coeffs = domain.interpolate(evals.clone());
        let poly = DensePolynomial::from_coeffs(coeffs);
        let tau = Fr::random(&mut rng);
        let lag = domain.lagrange_coefficients_at(&tau);
        let via_lagrange: Fr = lag.iter().zip(evals.iter()).map(|(l, e)| *l * *e).sum();
        assert_eq!(via_lagrange, poly.evaluate(&tau));
    }

    #[test]
    fn lagrange_at_domain_point_is_indicator() {
        let domain = EvaluationDomain::<Fr>::new(8).unwrap();
        let tau = domain.element(5);
        let lag = domain.lagrange_coefficients_at(&tau);
        for (i, l) in lag.iter().enumerate() {
            assert_eq!(*l, if i == 5 { Fr::one() } else { Fr::zero() });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_interpolate_evaluate_roundtrip(vals in prop::collection::vec(0u64..1_000_000, 1..33)) {
            let domain = EvaluationDomain::<Fr>::new(vals.len()).unwrap();
            let evals: Vec<Fr> = vals.iter().map(|v| Fr::from_u64(*v))
                .chain(std::iter::repeat(Fr::zero()))
                .take(domain.size())
                .collect();
            let coeffs = domain.interpolate(evals.clone());
            let back = domain.evaluate_all(&coeffs);
            prop_assert_eq!(back, evals);
        }
    }
}
