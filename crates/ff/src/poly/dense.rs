//! Dense univariate polynomials over a prime field.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};

use crate::traits::{Field, PrimeField};

use super::EvaluationDomain;

/// A dense univariate polynomial, stored as coefficients in increasing degree
/// order (`coeffs[i]` is the coefficient of `X^i`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DensePolynomial<F: Field> {
    /// Coefficients, lowest degree first. Trailing zeros are trimmed.
    pub coeffs: Vec<F>,
}

impl<F: Field> DensePolynomial<F> {
    /// Creates a polynomial from coefficients (lowest degree first),
    /// trimming trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(Field::is_zero) {
            coeffs.pop();
        }
        DensePolynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        DensePolynomial { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::from_coeffs(vec![c])
    }

    /// Returns `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial (0 for the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates the polynomial at `x` using Horner's rule.
    pub fn evaluate(&self, x: &F) -> F {
        let mut acc = F::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * *x + *c;
        }
        acc
    }

    /// Schoolbook multiplication; used for small polynomials and as a
    /// reference for the FFT-based product.
    pub fn naive_mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![F::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] += *a * *b;
            }
        }
        Self::from_coeffs(out)
    }

    /// Multiplies two polynomials by a scalar.
    pub fn scale(&self, k: &F) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|c| *c * *k).collect())
    }

    /// Long division by another polynomial, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if the divisor is zero.
    pub fn divide_with_remainder(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        if self.degree() < divisor.degree() || self.is_zero() {
            return (Self::zero(), self.clone());
        }
        let mut remainder = self.coeffs.clone();
        let d = divisor.degree();
        let lead_inv = divisor.coeffs[d]
            .inverse()
            .expect("leading coefficient is non-zero by construction");
        let mut quotient = vec![F::zero(); self.degree() - d + 1];
        for i in (d..remainder.len()).rev() {
            let q = remainder[i] * lead_inv;
            quotient[i - d] = q;
            if q.is_zero() {
                continue;
            }
            for (j, dc) in divisor.coeffs.iter().enumerate() {
                let idx = i - d + j;
                let sub = *dc * q;
                remainder[idx] -= sub;
            }
        }
        remainder.truncate(d);
        (Self::from_coeffs(quotient), Self::from_coeffs(remainder))
    }
}

impl<F: PrimeField> DensePolynomial<F> {
    /// FFT-based multiplication over a prime field with sufficient 2-adicity.
    pub fn fft_mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let result_len = self.coeffs.len() + other.coeffs.len() - 1;
        let Some(domain) = EvaluationDomain::<F>::new(result_len) else {
            return self.naive_mul(other);
        };
        let mut a = self.coeffs.clone();
        let mut b = other.coeffs.clone();
        a.resize(domain.size(), F::zero());
        b.resize(domain.size(), F::zero());
        domain.fft_in_place(&mut a);
        domain.fft_in_place(&mut b);
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x *= *y;
        }
        domain.ifft_in_place(&mut a);
        a.truncate(result_len);
        Self::from_coeffs(a)
    }

    /// Lagrange interpolation through `(points[i], values[i])` pairs.
    ///
    /// Runs in `O(n^2)`; intended for small instances and tests (the QAP
    /// reduction uses FFT-domain interpolation instead).
    ///
    /// # Panics
    /// Panics if `points` contains duplicates or lengths differ.
    pub fn interpolate(points: &[F], values: &[F]) -> Self {
        assert_eq!(points.len(), values.len(), "points/values length mismatch");
        let mut acc = Self::zero();
        for (i, (xi, yi)) in points.iter().zip(values.iter()).enumerate() {
            // numerator: prod_{j != i} (X - xj), denominator: prod (xi - xj)
            let mut num = Self::constant(F::one());
            let mut denom = F::one();
            for (j, xj) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                num = num.naive_mul(&Self::from_coeffs(vec![-*xj, F::one()]));
                denom *= *xi - *xj;
            }
            let denom_inv = denom
                .inverse()
                .expect("interpolation points must be distinct");
            acc = acc + num.scale(&(*yi * denom_inv));
        }
        acc
    }
}

impl<F: Field> Add for DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn add(self, rhs: Self) -> Self {
        &self + &rhs
    }
}

impl<'a, F: Field> Add<&'a DensePolynomial<F>> for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn add(self, rhs: &'a DensePolynomial<F>) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![F::zero(); n];
        for (i, c) in self.coeffs.iter().enumerate() {
            out[i] += *c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            out[i] += *c;
        }
        DensePolynomial::from_coeffs(out)
    }
}

impl<F: Field> AddAssign<&DensePolynomial<F>> for DensePolynomial<F> {
    fn add_assign(&mut self, rhs: &DensePolynomial<F>) {
        *self = &*self + rhs;
    }
}

impl<F: Field> Sub for DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn sub(self, rhs: Self) -> Self {
        &self - &rhs
    }
}

impl<'a, F: Field> Sub<&'a DensePolynomial<F>> for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn sub(self, rhs: &'a DensePolynomial<F>) -> DensePolynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![F::zero(); n];
        for (i, c) in self.coeffs.iter().enumerate() {
            out[i] += *c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            out[i] -= *c;
        }
        DensePolynomial::from_coeffs(out)
    }
}

impl<F: Field> Neg for DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn neg(self) -> Self {
        DensePolynomial::from_coeffs(self.coeffs.into_iter().map(|c| -c).collect())
    }
}

impl<F: PrimeField> Mul for &DensePolynomial<F> {
    type Output = DensePolynomial<F>;
    fn mul(self, rhs: Self) -> DensePolynomial<F> {
        if self.coeffs.len().min(rhs.coeffs.len()) <= 32 {
            self.naive_mul(rhs)
        } else {
            self.fft_mul(rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr;
    use crate::traits::PrimeField;
    use proptest::prelude::*;

    fn poly(v: &[u64]) -> DensePolynomial<Fr> {
        DensePolynomial::from_coeffs(v.iter().map(|x| Fr::from_u64(*x)).collect())
    }

    #[test]
    fn trims_trailing_zeros() {
        let p = DensePolynomial::from_coeffs(vec![Fr::from_u64(1), Fr::zero(), Fr::zero()]);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.coeffs.len(), 1);
        assert!(DensePolynomial::<Fr>::from_coeffs(vec![Fr::zero()]).is_zero());
    }

    #[test]
    fn evaluate_horner() {
        // p(x) = 1 + 2x + 3x^2 at x = 5 -> 1 + 10 + 75 = 86
        let p = poly(&[1, 2, 3]);
        assert_eq!(p.evaluate(&Fr::from_u64(5)), Fr::from_u64(86));
        assert_eq!(
            DensePolynomial::<Fr>::zero().evaluate(&Fr::from_u64(5)),
            Fr::zero()
        );
    }

    #[test]
    fn naive_mul_small() {
        // (1 + x)(1 - x) = 1 - x^2
        let a = DensePolynomial::from_coeffs(vec![Fr::one(), Fr::one()]);
        let b = DensePolynomial::from_coeffs(vec![Fr::one(), -Fr::one()]);
        let c = a.naive_mul(&b);
        assert_eq!(c.coeffs, vec![Fr::one(), Fr::zero(), -Fr::one()]);
    }

    #[test]
    fn division_with_remainder() {
        // x^3 - 1 = (x - 1)(x^2 + x + 1)
        let num = DensePolynomial::from_coeffs(vec![-Fr::one(), Fr::zero(), Fr::zero(), Fr::one()]);
        let div = DensePolynomial::from_coeffs(vec![-Fr::one(), Fr::one()]);
        let (q, r) = num.divide_with_remainder(&div);
        assert!(r.is_zero());
        assert_eq!(q, poly(&[1, 1, 1]));

        // remainder case: x^2 + 1 divided by x + 1 -> q = x - 1, r = 2
        let num = poly(&[1, 0, 1]);
        let div = poly(&[1, 1]);
        let (q, r) = num.divide_with_remainder(&div);
        assert_eq!(q, DensePolynomial::from_coeffs(vec![-Fr::one(), Fr::one()]));
        assert_eq!(r, poly(&[2]));
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = poly(&[3, 1, 4, 1, 5]);
        let points: Vec<Fr> = (10..15).map(Fr::from_u64).collect();
        let values: Vec<Fr> = points.iter().map(|x| p.evaluate(x)).collect();
        let q = DensePolynomial::interpolate(&points, &values);
        assert_eq!(p, q);
    }

    #[test]
    fn fft_mul_matches_naive() {
        let a = poly(&(0..100).collect::<Vec<u64>>());
        let b = poly(&(1..80).collect::<Vec<u64>>());
        assert_eq!(a.fft_mul(&b), a.naive_mul(&b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_mul_then_divide(a in prop::collection::vec(1u64..1000, 1..12),
                                b in prop::collection::vec(1u64..1000, 1..12)) {
            let pa = poly(&a);
            let pb = poly(&b);
            if pa.is_zero() || pb.is_zero() { return Ok(()); }
            let prod = pa.naive_mul(&pb);
            let (q, r) = prod.divide_with_remainder(&pb);
            prop_assert!(r.is_zero());
            prop_assert_eq!(q, pa);
        }

        #[test]
        fn prop_eval_homomorphism(a in prop::collection::vec(0u64..1000, 0..10),
                                  b in prop::collection::vec(0u64..1000, 0..10),
                                  x in 0u64..10_000) {
            let pa = poly(&a);
            let pb = poly(&b);
            let x = Fr::from_u64(x);
            let sum = &pa + &pb;
            let prod = pa.naive_mul(&pb);
            prop_assert_eq!(sum.evaluate(&x), pa.evaluate(&x) + pb.evaluate(&x));
            prop_assert_eq!(prod.evaluate(&x), pa.evaluate(&x) * pb.evaluate(&x));
        }
    }
}
