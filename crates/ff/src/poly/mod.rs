//! Polynomial arithmetic: dense/sparse univariate polynomials, radix-2 FFT
//! evaluation domains, and multilinear extensions for sum-check protocols.

mod dense;
mod domain;
mod multilinear;
mod sparse;

pub use dense::DensePolynomial;
pub use domain::EvaluationDomain;
pub use multilinear::{eq_evals, MultilinearPolynomial};
pub use sparse::SparsePolynomial;
