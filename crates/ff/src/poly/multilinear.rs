//! Multilinear polynomials in evaluation form over the boolean hypercube.
//!
//! These back the sum-check protocols in `zkvc-spartan` (R1CS satisfiability)
//! and `zkvc-interactive` (Thaler's matrix-multiplication protocol).

use crate::traits::Field;

/// A multilinear polynomial in `num_vars` variables, stored as its `2^v`
/// evaluations over the boolean hypercube `{0,1}^v`.
///
/// Index `i` stores the evaluation at the point whose bits are
/// `(i_0, i_1, ..., i_{v-1})` with `i_0` the **lowest** bit of `i`
/// corresponding to the **first** variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultilinearPolynomial<F: Field> {
    num_vars: usize,
    evals: Vec<F>,
}

impl<F: Field> MultilinearPolynomial<F> {
    /// Creates a multilinear polynomial from hypercube evaluations, padding
    /// with zeros up to the next power of two.
    pub fn from_evaluations(mut evals: Vec<F>) -> Self {
        let n = evals.len().max(1).next_power_of_two();
        evals.resize(n, F::zero());
        MultilinearPolynomial {
            num_vars: n.trailing_zeros() as usize,
            evals,
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of stored evaluations (`2^num_vars`).
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// Whether the polynomial has no evaluations (never true after
    /// construction, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// Borrow the evaluation table.
    pub fn evaluations(&self) -> &[F] {
        &self.evals
    }

    /// Sum of all hypercube evaluations.
    pub fn sum_over_hypercube(&self) -> F {
        self.evals.iter().copied().sum()
    }

    /// Fixes the **first** variable to `r`, halving the table. The fold is
    /// data-parallel (entry `i` of the result depends only on entries
    /// `2i, 2i+1`), so large tables are split across worker threads; the
    /// result is identical to the serial fold.
    ///
    /// After this call the polynomial has one fewer variable.
    pub fn fix_first_variable(&mut self, r: F) {
        assert!(self.num_vars > 0, "no variables left to fix");
        let half = self.evals.len() / 2;
        let mut out = vec![F::zero(); half];
        let evals = &self.evals;
        crate::par::for_chunks_mut(
            &mut out,
            1 << 12,
            crate::par::num_threads(),
            |off, chunk| {
                for (k, o) in chunk.iter_mut().enumerate() {
                    let a = evals[2 * (off + k)];
                    let b = evals[2 * (off + k) + 1];
                    *o = a + (b - a) * r;
                }
            },
        );
        self.evals = out;
        self.num_vars -= 1;
    }

    /// Evaluates the polynomial at an arbitrary point in `F^v`.
    ///
    /// # Panics
    /// Panics if `point.len() != num_vars`.
    pub fn evaluate(&self, point: &[F]) -> F {
        assert_eq!(point.len(), self.num_vars, "point arity mismatch");
        let mut cur = self.clone();
        for r in point {
            cur.fix_first_variable(*r);
        }
        cur.evals[0]
    }

    /// Evaluate via the eq-table inner product (no mutation); used in tests
    /// to cross-check [`Self::evaluate`].
    pub fn evaluate_with_tables(&self, point: &[F]) -> F {
        assert_eq!(point.len(), self.num_vars, "point arity mismatch");
        let chi = eq_evals(point);
        self.evals
            .iter()
            .zip(chi.iter())
            .map(|(e, c)| *e * *c)
            .sum()
    }

    /// Consumes the polynomial and returns its evaluation table.
    pub fn into_evaluations(self) -> Vec<F> {
        self.evals
    }
}

/// Computes the table `chi_i(point)` for all `i` in `{0,1}^v`, where
/// `chi_i(x) = prod_j (i_j x_j + (1-i_j)(1-x_j))` is the multilinear
/// Lagrange basis ("eq") polynomial.
///
/// Bit `j` of the table index corresponds to variable `j` (low bit = first
/// variable), matching [`MultilinearPolynomial`]'s indexing.
pub fn eq_evals<F: Field>(point: &[F]) -> Vec<F> {
    let mut table = vec![F::one()];
    for (j, r) in point.iter().enumerate() {
        let half = 1usize << j;
        let mut next = vec![F::zero(); half * 2];
        for i in 0..half {
            let with_one = table[i] * *r;
            next[i] = table[i] - with_one; // variable j = 0
            next[i + half] = with_one; // variable j = 1
        }
        table = next;
    }
    // Reorder: our construction put variable j at bit position j from the
    // "half" offset, i.e. bit j of the index — which is already the desired
    // order. (next[i + half * bit_j])
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr;
    use crate::traits::PrimeField;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mle(v: &[u64]) -> MultilinearPolynomial<Fr> {
        MultilinearPolynomial::from_evaluations(v.iter().map(|x| Fr::from_u64(*x)).collect())
    }

    #[test]
    fn pads_to_power_of_two() {
        let p = mle(&[1, 2, 3]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.len(), 4);
        assert_eq!(p.evaluations()[3], Fr::zero());
    }

    #[test]
    fn evaluate_on_hypercube_matches_table() {
        let p = mle(&[7, 3, 9, 4]);
        // points (x0, x1): index = x0 + 2*x1
        for i in 0..4usize {
            let point = vec![Fr::from_u64((i & 1) as u64), Fr::from_u64((i >> 1) as u64)];
            assert_eq!(p.evaluate(&point), p.evaluations()[i]);
        }
    }

    #[test]
    fn two_evaluation_methods_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = MultilinearPolynomial::from_evaluations(
            (0..16).map(|_| Fr::random(&mut rng)).collect(),
        );
        let point: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        assert_eq!(p.evaluate(&point), p.evaluate_with_tables(&point));
    }

    #[test]
    fn eq_table_is_indicator_on_hypercube() {
        let point = vec![Fr::from_u64(1), Fr::from_u64(0), Fr::from_u64(1)];
        let table = eq_evals(&point);
        // point = (1,0,1) -> index with bit0=1, bit1=0, bit2=1 -> 0b101 = 5
        for (i, v) in table.iter().enumerate() {
            assert_eq!(*v, if i == 5 { Fr::one() } else { Fr::zero() });
        }
    }

    #[test]
    fn eq_table_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let point: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let sum: Fr = eq_evals(&point).iter().copied().sum();
        assert_eq!(sum, Fr::one());
    }

    #[test]
    fn fix_first_variable_partial_eval() {
        let mut rng = StdRng::seed_from_u64(5);
        let p =
            MultilinearPolynomial::from_evaluations((0..8).map(|_| Fr::random(&mut rng)).collect());
        let r = Fr::random(&mut rng);
        let mut q = p.clone();
        q.fix_first_variable(r);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(q.evaluate(&[a, b]), p.evaluate(&[r, a, b]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_sum_over_hypercube(vals in prop::collection::vec(0u64..1000, 1..17)) {
            let p = mle(&vals);
            let expected: u64 = vals.iter().sum();
            prop_assert_eq!(p.sum_over_hypercube(), Fr::from_u64(expected));
        }

        #[test]
        fn prop_multilinearity(vals in prop::collection::vec(0u64..1000, 8..9), r in 0u64..1000) {
            // f(r, x) = (1-r) f(0,x) + r f(1,x) for the first variable
            let p = mle(&vals);
            let r = Fr::from_u64(r);
            let x = [Fr::from_u64(3), Fr::from_u64(5)];
            let f0 = p.evaluate(&[Fr::zero(), x[0], x[1]]);
            let f1 = p.evaluate(&[Fr::one(), x[0], x[1]]);
            let fr = p.evaluate(&[r, x[0], x[1]]);
            prop_assert_eq!(fr, (Fr::one() - r) * f0 + r * f1);
        }
    }
}
