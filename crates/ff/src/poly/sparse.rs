//! Sparse univariate polynomials (few non-zero coefficients).
//!
//! Used for the vanishing polynomial `X^n - 1` and for CRPC's power-of-`Z`
//! bookkeeping where only a handful of monomials appear.

use crate::traits::Field;

use super::DensePolynomial;

/// A univariate polynomial stored as `(degree, coefficient)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SparsePolynomial<F: Field> {
    /// Non-zero terms sorted by ascending degree.
    terms: Vec<(usize, F)>,
}

impl<F: Field> SparsePolynomial<F> {
    /// Creates a sparse polynomial from `(degree, coefficient)` terms.
    /// Zero coefficients are dropped and duplicate degrees are merged.
    pub fn from_terms(terms: Vec<(usize, F)>) -> Self {
        let mut map: std::collections::BTreeMap<usize, F> = std::collections::BTreeMap::new();
        for (d, c) in terms {
            if c.is_zero() {
                continue;
            }
            let e = map.entry(d).or_insert_with(F::zero);
            *e += c;
        }
        SparsePolynomial {
            terms: map.into_iter().filter(|(_, c)| !c.is_zero()).collect(),
        }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        SparsePolynomial { terms: vec![] }
    }

    /// Returns `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Degree (0 for the zero polynomial).
    pub fn degree(&self) -> usize {
        self.terms.last().map_or(0, |(d, _)| *d)
    }

    /// The non-zero terms, ascending by degree.
    pub fn terms(&self) -> &[(usize, F)] {
        &self.terms
    }

    /// Evaluates at `x`.
    pub fn evaluate(&self, x: &F) -> F {
        self.terms
            .iter()
            .map(|(d, c)| *c * x.pow(&[*d as u64]))
            .sum()
    }

    /// Converts to a dense polynomial.
    pub fn to_dense(&self) -> DensePolynomial<F> {
        let mut coeffs = vec![F::zero(); self.degree() + 1];
        for (d, c) in &self.terms {
            coeffs[*d] = *c;
        }
        DensePolynomial::from_coeffs(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Fr;
    use crate::traits::PrimeField;

    #[test]
    fn merges_and_drops_terms() {
        let p = SparsePolynomial::from_terms(vec![
            (2, Fr::from_u64(3)),
            (0, Fr::from_u64(1)),
            (2, -Fr::from_u64(3)),
            (5, Fr::zero()),
        ]);
        assert_eq!(p.terms().len(), 1);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn evaluation_matches_dense() {
        let p = SparsePolynomial::from_terms(vec![
            (0, Fr::from_u64(4)),
            (3, Fr::from_u64(7)),
            (10, Fr::from_u64(2)),
        ]);
        let d = p.to_dense();
        for x in 0..10u64 {
            let x = Fr::from_u64(x);
            assert_eq!(p.evaluate(&x), d.evaluate(&x));
        }
    }

    #[test]
    fn zero_polynomial() {
        let p = SparsePolynomial::<Fr>::zero();
        assert!(p.is_zero());
        assert_eq!(p.evaluate(&Fr::from_u64(9)), Fr::zero());
        assert!(p.to_dense().is_zero());
    }
}
