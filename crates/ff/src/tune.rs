//! Tunable FFT dispatch parameters.
//!
//! [`EvaluationDomain::fft_in_place`](crate::EvaluationDomain::fft_in_place)
//! chooses between the serial cached-twiddle kernel and the two-phase
//! parallel kernel. That choice used to be a hard-coded size cutover
//! (`2^12` and up goes parallel whenever more than one thread is
//! available) — a guess that the committed kernel benchmarks showed
//! losing at some sizes on some hosts. This module makes the choice a
//! **per-log-size decision table** that a calibration probe (see
//! `zkvc_curve::tune`) can overwrite with measured-on-this-host answers.
//!
//! The parameters are process-global: install once at startup (the
//! `zkvc` CLI does this from the persisted tune profile), read on every
//! FFT dispatch. The static default [`FftParams::STATIC`] reproduces the
//! historical behavior exactly, so a process that never installs a
//! profile runs precisely as before.
//!
//! **Determinism invariant:** these parameters change only the schedule,
//! never the arithmetic. The serial and parallel FFT kernels are
//! bit-identical over a prime field (exact addition), so any decision
//! table produces the same outputs.

use std::sync::RwLock;

/// Log-size classes above this are clamped onto it (the field's
/// 2-adicity caps domains at `2^32` anyway).
pub const MAX_LOG2: u32 = 32;

/// Per-log-size FFT dispatch decisions.
///
/// Bit `k` of `par_mask` set means: a size-`2^k` FFT may take the
/// parallel kernel (it still requires more than one available thread —
/// on a single-core host every FFT stays serial regardless of the mask).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FftParams {
    /// Bitmask over log2(domain size): bit `k` allows the parallel
    /// kernel for `2^k`-point FFTs.
    pub par_mask: u64,
}

impl FftParams {
    /// The historical hard-coded dispatch: parallel for `2^12` points
    /// and up (when threads are available).
    pub const STATIC: FftParams = FftParams {
        // Bits 12..=63.
        par_mask: !0u64 << 12,
    };

    /// Whether the decision table allows the parallel kernel for a
    /// `2^log2`-point FFT at all. Checking this before counting threads
    /// lets the dispatch hot path skip the `available_parallelism`
    /// syscall entirely for sizes the table keeps serial.
    #[must_use]
    pub fn allows_parallel(&self, log2: u32) -> bool {
        (self.par_mask >> log2.min(MAX_LOG2)) & 1 == 1
    }

    /// Whether a `2^log2`-point FFT should take the parallel kernel
    /// given `threads` available worker threads.
    #[must_use]
    pub fn parallel(&self, log2: u32, threads: usize) -> bool {
        threads > 1 && self.allows_parallel(log2)
    }

    /// Sets the decision for one log-size class.
    pub fn set_parallel(&mut self, log2: u32, parallel: bool) {
        let bit = 1u64 << log2.min(MAX_LOG2);
        if parallel {
            self.par_mask |= bit;
        } else {
            self.par_mask &= !bit;
        }
    }
}

static ACTIVE: RwLock<FftParams> = RwLock::new(FftParams::STATIC);

/// The currently installed FFT dispatch parameters.
pub fn fft_params() -> FftParams {
    *ACTIVE.read().expect("fft tune params poisoned")
}

/// Installs FFT dispatch parameters process-wide, returning the previous
/// ones. Results are bit-identical under any parameters; only the
/// schedule changes.
pub fn set_fft_params(params: FftParams) -> FftParams {
    let mut slot = ACTIVE.write().expect("fft tune params poisoned");
    std::mem::replace(&mut slot, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_params_reproduce_historical_cutover() {
        let p = FftParams::STATIC;
        for log2 in 0..12 {
            assert!(!p.parallel(log2, 8), "2^{log2} must stay serial");
        }
        for log2 in 12..=MAX_LOG2 {
            assert!(p.parallel(log2, 8), "2^{log2} must go parallel");
            assert!(!p.parallel(log2, 1), "one thread is always serial");
        }
    }

    #[test]
    fn set_parallel_flips_single_classes() {
        let mut p = FftParams::STATIC;
        p.set_parallel(18, false);
        assert!(!p.parallel(18, 8));
        assert!(p.parallel(17, 8));
        assert!(p.parallel(19, 8));
        p.set_parallel(10, true);
        assert!(p.parallel(10, 2));
        // Oversized classes clamp onto MAX_LOG2.
        p.set_parallel(MAX_LOG2 + 5, false);
        assert!(!p.parallel(MAX_LOG2, 4));
    }

    #[test]
    fn install_round_trips() {
        let original = fft_params();
        let mut tuned = original;
        tuned.set_parallel(13, false);
        let previous = set_fft_params(tuned);
        assert_eq!(previous, original);
        assert_eq!(fft_params(), tuned);
        set_fft_params(original);
    }
}
