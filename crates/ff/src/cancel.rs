//! Cooperative cancellation checkpoints for long-running kernels.
//!
//! The proving pool owns deadlines and cancellation flags, but the time is
//! actually *spent* several crates below it, inside multi-scalar
//! multiplications and FFTs that know nothing about jobs or sessions. This
//! module bridges the two layers without threading a cancel parameter
//! through every kernel signature: the pool [`install`]s a check predicate
//! into a thread-local slot, and kernels call [`checkpoint`] at natural
//! stage boundaries (once per MSM window, once per FFT stage).
//!
//! When the predicate reports cancellation, [`checkpoint`] panics with the
//! [`Cancelled`] marker payload. The pool's existing `catch_unwind` job
//! containment downcasts the payload and records the job as cancelled (or
//! past its deadline) instead of panicked — no kernel returns a `Result`,
//! no proof-system API changes.
//!
//! With no predicate installed (the default, and always the case outside
//! the pool) a checkpoint is a single thread-local read that observes
//! `None` — cheap enough to leave in release builds.
//!
//! Kernels that fan work out over scoped threads must do one of two
//! things: either only checkpoint on the orchestrating thread (thread
//! locals do not propagate into spawned threads, so worker-side
//! checkpoints are inert no-ops), or capture [`current`] before the scope
//! and re-[`install`] it inside each worker — in which case the worker's
//! handle must be joined explicitly and its panic payload re-raised with
//! [`std::panic::resume_unwind`], because an implicitly joined scoped
//! thread replaces the payload with a generic "a scoped thread panicked"
//! message and the marker would be lost.

use std::cell::RefCell;
use std::sync::Arc;

/// A shared cancellation predicate: returns `true` once the surrounding
/// job should stop (deadline passed, session cancelled, pool shut down).
///
/// The predicate is called from tight kernel loops, so it should be cheap
/// — typically one or two relaxed atomic loads and an `Instant` compare.
pub type CancelCheck = Arc<dyn Fn() -> bool + Send + Sync>;

/// Marker panic payload raised by [`checkpoint`] when the installed
/// [`CancelCheck`] reports cancellation.
///
/// Catch sites (`catch_unwind` in the proving pool) downcast the payload
/// to this type to distinguish a cooperative stop from a genuine kernel
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

thread_local! {
    static CHECK: RefCell<Option<CancelCheck>> = const { RefCell::new(None) };
}

/// Guard returned by [`install`]; restores the previously installed
/// predicate (usually `None`) when dropped, so nested installs and panics
/// both unwind cleanly.
#[must_use = "dropping the guard immediately uninstalls the cancel check"]
pub struct CancelGuard {
    prev: Option<CancelCheck>,
}

impl core::fmt::Debug for CancelGuard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The predicate itself is an opaque closure; show only whether a
        // previous one is being shadowed.
        f.debug_struct("CancelGuard")
            .field("shadows_previous", &self.prev.is_some())
            .finish()
    }
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        CHECK.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `check` as this thread's cancellation predicate for the
/// lifetime of the returned guard.
pub fn install(check: CancelCheck) -> CancelGuard {
    let prev = CHECK.with(|c| c.borrow_mut().replace(check));
    CancelGuard { prev }
}

/// The predicate currently installed on this thread, if any. Kernels that
/// spawn scoped workers capture this before the scope and re-[`install`]
/// it inside each worker closure.
pub fn current() -> Option<CancelCheck> {
    CHECK.with(|c| c.borrow().clone())
}

/// Cooperative cancellation point. Panics with the [`Cancelled`] marker
/// when the installed predicate reports cancellation; a no-op (one
/// thread-local read) when nothing is installed.
#[inline]
pub fn checkpoint() {
    let cancelled = CHECK.with(|c| c.borrow().as_ref().is_some_and(|f| f()));
    if cancelled {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn checkpoint_is_a_noop_without_an_installed_check() {
        checkpoint(); // must not panic
    }

    #[test]
    fn checkpoint_raises_the_marker_once_the_check_trips() {
        let flag = Arc::new(AtomicBool::new(false));
        let check = Arc::clone(&flag);
        let guard = install(Arc::new(move || check.load(Ordering::Relaxed)));
        checkpoint(); // not tripped yet
        flag.store(true, Ordering::Relaxed);
        let payload = std::panic::catch_unwind(checkpoint).unwrap_err();
        assert!(payload.downcast_ref::<Cancelled>().is_some());
        drop(guard);
        checkpoint(); // uninstalled again: no panic even though flag is set
    }

    #[test]
    fn install_nests_and_restores_the_previous_check() {
        let outer = install(Arc::new(|| false));
        assert!(current().is_some());
        {
            let _inner = install(Arc::new(|| false));
            assert!(current().is_some());
        }
        assert!(current().is_some(), "outer check restored after inner drop");
        drop(outer);
        assert!(current().is_none());
    }

    #[test]
    fn current_propagates_into_spawned_threads_by_hand() {
        let _guard = install(Arc::new(|| true));
        let captured = current().expect("check installed");
        let handle = std::thread::spawn(move || {
            assert!(current().is_none(), "thread locals do not propagate");
            let _g = install(captured);
            std::panic::catch_unwind(checkpoint).is_err()
        });
        assert!(handle.join().unwrap());
    }
}
