//! The quadratic extension `Fq2 = Fq[i] / (i^2 + 1)`.
//!
//! Because the base-field modulus satisfies `p = 3 mod 4`, `-1` is a
//! quadratic non-residue and `x^2 + 1` is irreducible. `Fq2` hosts the image
//! of the distortion map used by the Type-1 Tate pairing and the pairing's
//! target group `GT`.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use super::Fq;
use crate::traits::Field;

/// An element `c0 + c1 * i` of the quadratic extension field.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Fq2 {
    /// Coefficient of `1`.
    pub c0: Fq,
    /// Coefficient of `i`.
    pub c1: Fq,
}

impl Fq2 {
    /// Creates the element `c0 + c1 * i`.
    pub const fn new(c0: Fq, c1: Fq) -> Self {
        Fq2 { c0, c1 }
    }

    /// Embeds a base-field element.
    pub fn from_base(c0: Fq) -> Self {
        Fq2 { c0, c1: Fq::zero() }
    }

    /// The conjugate `c0 - c1 * i`, which equals the Frobenius map `x -> x^p`.
    pub fn conjugate(&self) -> Self {
        Fq2 {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Frobenius endomorphism (`x -> x^p`); for `Fq2` this is conjugation.
    pub fn frobenius(&self) -> Self {
        self.conjugate()
    }

    /// The field norm `c0^2 + c1^2` down to `Fq`.
    pub fn norm(&self) -> Fq {
        self.c0.square() + self.c1.square()
    }

    fn mul_internal(&self, rhs: &Self) -> Self {
        // Karatsuba: (a0 + a1 i)(b0 + b1 i) = (a0 b0 - a1 b1) + ((a0+a1)(b0+b1) - a0 b0 - a1 b1) i
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let c0 = v0 - v1;
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1;
        Fq2 { c0, c1 }
    }
}

impl fmt::Display for Fq2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}*i)", self.c0, self.c1)
    }
}

macro_rules! impl_fq2_binop {
    ($trait:ident, $method:ident, |$a:ident, $b:ident| $body:expr) => {
        impl $trait for Fq2 {
            type Output = Fq2;
            #[inline]
            fn $method(self, rhs: Fq2) -> Fq2 {
                let ($a, $b) = (&self, &rhs);
                $body
            }
        }
        impl<'a> $trait<&'a Fq2> for Fq2 {
            type Output = Fq2;
            #[inline]
            fn $method(self, rhs: &'a Fq2) -> Fq2 {
                let ($a, $b) = (&self, rhs);
                $body
            }
        }
    };
}

impl_fq2_binop!(Add, add, |a, b| Fq2 {
    c0: a.c0 + b.c0,
    c1: a.c1 + b.c1
});
impl_fq2_binop!(Sub, sub, |a, b| Fq2 {
    c0: a.c0 - b.c0,
    c1: a.c1 - b.c1
});
impl_fq2_binop!(Mul, mul, |a, b| a.mul_internal(b));

impl AddAssign for Fq2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fq2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fq2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl Neg for Fq2 {
    type Output = Fq2;
    fn neg(self) -> Fq2 {
        Fq2 {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}
impl Sum for Fq2 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Fq2::default(), |a, b| a + b)
    }
}
impl Product for Fq2 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Field::one(), |a, b| a * b)
    }
}

impl Field for Fq2 {
    fn zero() -> Self {
        Fq2 {
            c0: Fq::zero(),
            c1: Fq::zero(),
        }
    }

    fn one() -> Self {
        Fq2 {
            c0: Fq::one(),
            c1: Fq::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (a + bi)^2 = (a+b)(a-b) + 2ab i
        let ab = self.c0 * self.c1;
        Fq2 {
            c0: (self.c0 + self.c1) * (self.c0 - self.c1),
            c1: ab + ab,
        }
    }

    fn inverse(&self) -> Option<Self> {
        // 1 / (a + bi) = (a - bi) / (a^2 + b^2)
        self.norm().inverse().map(|n| Fq2 {
            c0: self.c0 * n,
            c1: -(self.c1 * n),
        })
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Fq2 {
            c0: Fq::random(rng),
            c1: Fq::random(rng),
        }
    }
}
