//! The scalar field `Fr` — the prime-order subgroup size of the pairing
//! group, and the field over which every constraint system in this workspace
//! is expressed.

use super::params;
use crate::fp::{Fp, FpParams};

/// Parameters of the scalar field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FrParameters;

impl FpParams for FrParameters {
    const MODULUS: [u64; 4] = params::FR_MODULUS;
    const R: [u64; 4] = params::FR_R;
    const R2: [u64; 4] = params::FR_R2;
    const INV: u64 = params::FR_INV;
    const MODULUS_BITS: u32 = params::FR_MODULUS_BITS;
    const TWO_ADICITY: u32 = params::FR_TWO_ADICITY;
    const ROOT_OF_UNITY: [u64; 4] = params::FR_ROOT_OF_UNITY;
    const GENERATOR: [u64; 4] = params::FR_GENERATOR;
}

/// The scalar field (order of G1). ~246 bits, 2-adicity 32.
pub type Fr = Fp<FrParameters>;
