//! Auto-generated curve and field parameters (scripts/gen_params.py).
//! Type-1 supersingular pairing curve: E: y^2 = x^3 + x over F_p,
//! p = h*r - 1 with h = 84, #E(F_p) = p + 1 = h*r.
#![allow(clippy::unreadable_literal)]
#![allow(missing_docs)]

/// Number of 64-bit limbs in a field element.
pub const NUM_LIMBS: usize = 4;

// ---- Scalar field Fr (group order) ----
/// Fr modulus r = 56539106072908298546665520023773392506479484700019806659891401718423879681
pub const FR_MODULUS: [u64; 4] = [
    0x000002fb00000001,
    0x0000000000000000,
    0x0000000000000000,
    0x0020000000000000,
];
pub const FR_R: [u64; 4] = [
    0xffe82afafffff801,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x001fffffffffffff,
];
pub const FR_R2: [u64; 4] = [
    0x7d80000000400000,
    0x0000023886400001,
    0x0000000000000000,
    0x0000000000000000,
];
pub const FR_R3: [u64; 4] = [
    0x000002f900000001,
    0xffcab369ffffee1e,
    0xffffffffcb0c3ef9,
    0x001fffffffffffff,
];
pub const FR_INV: u64 = 0x000002faffffffff;
pub const FR_TWO_ADICITY: u32 = 32;
/// 2^32-th primitive root of unity, standard form.
pub const FR_ROOT_OF_UNITY: [u64; 4] = [
    0xc1b8475711f8e3ae,
    0x40d459d1dedb6513,
    0x15685824e7378dc9,
    0x0003ecd6ecd9f9af,
];
/// Multiplicative generator 14 of Fr, standard form.
pub const FR_GENERATOR: [u64; 4] = [
    0x000000000000000e,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
];
pub const FR_MODULUS_BITS: u32 = 246;
/// (r-1)/2
pub const FR_MODULUS_MINUS_ONE_DIV_TWO: [u64; 4] = [
    0x0000017d80000000,
    0x0000000000000000,
    0x0000000000000000,
    0x0010000000000000,
];

// ---- Base field Fq (curve coordinates) ----
/// Fq modulus p = 4749284910124297077919903681996964970544276714801663759430877744347605893203
pub const FQ_MODULUS: [u64; 4] = [
    0x0000fa5c00000053,
    0x0000000000000000,
    0x0000000000000000,
    0x0a80000000000000,
];
pub const FQ_R: [u64; 4] = [
    0xffe8875ffffff838,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x03ffffffffffffff,
];
pub const FQ_R2: [u64; 4] = [
    0xda7b6e483101886b,
    0x861863be9ea18619,
    0x1861861861861861,
    0x0006186186186186,
];
pub const FQ_R3: [u64; 4] = [
    0x66ad44451053d037,
    0xe9bc3e0c957a6ac4,
    0x833157a78ead0b4f,
    0x02fc3a0cc55e9f0e,
];
pub const FQ_INV: u64 = 0xff122bf5d4d1bc25;
pub const FQ_MODULUS_BITS: u32 = 252;
/// (p+1)/4 used for square roots since p = 3 mod 4.
pub const FQ_P_PLUS_ONE_DIV_FOUR: [u64; 4] = [
    0x00003e9700000015,
    0x0000000000000000,
    0x0000000000000000,
    0x02a0000000000000,
];

// ---- Curve E: y^2 = x^3 + x over Fq ----
/// Cofactor h such that #E(F_p) = h * r.
pub const COFACTOR: u64 = 84;
/// Generator of the order-r subgroup G1 (standard form coordinates).
pub const G1_GENERATOR_X: [u64; 4] = [
    0x30a4682c10e32a88,
    0x3749cac6203854dc,
    0xe62c13f7a98bacbe,
    0x032d712fd78e407a,
];
pub const G1_GENERATOR_Y: [u64; 4] = [
    0xd5b6bd07fee3b604,
    0x09d8de143b0e2a5c,
    0xf89a9655172ac9fb,
    0x04962d4871c01155,
];

// ---- Pairing ----
/// Final exponentiation power (p^2 - 1) / r, little-endian 64-bit limbs (8 limbs).
pub const FINAL_EXP: [u64; 8] = [
    0x0052263000001ae8,
    0x0000000000000000,
    0x0000000000000000,
    0x7200000000000000,
    0x0000000000000003,
    0x0000000000000000,
    0x0000000000000000,
    0x0000000000000000,
];
