//! The base field `Fq` of the pairing-friendly curve `E: y^2 = x^3 + x`.

use super::params;
use crate::fp::{sqrt_3mod4, Fp, FpParams};

/// Parameters of the base field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FqParameters;

impl FpParams for FqParameters {
    const MODULUS: [u64; 4] = params::FQ_MODULUS;
    const R: [u64; 4] = params::FQ_R;
    const R2: [u64; 4] = params::FQ_R2;
    const INV: u64 = params::FQ_INV;
    const MODULUS_BITS: u32 = params::FQ_MODULUS_BITS;
    // The base field is not used for FFTs; 2-adicity of p-1 is 1.
    const TWO_ADICITY: u32 = 1;
    const ROOT_OF_UNITY: [u64; 4] = [0, 0, 0, 0];
    const GENERATOR: [u64; 4] = [0, 0, 0, 0];
}

/// The curve base field (252 bits, `p = 3 mod 4`).
pub type Fq = Fp<FqParameters>;

impl Fq {
    /// Square root (if one exists), using `x^{(p+1)/4}` since `p = 3 mod 4`.
    pub fn sqrt(&self) -> Option<Self> {
        sqrt_3mod4(self, &params::FQ_P_PLUS_ONE_DIV_FOUR)
    }
}
