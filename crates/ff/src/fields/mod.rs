//! Concrete field instantiations used by the zkVC proof systems.
//!
//! * [`Fr`] — the ~246-bit scalar field (order of the pairing group G1);
//!   all R1CS witnesses, QAP polynomials and sum-check messages live here.
//! * [`Fq`] — the 252-bit base field of the curve `E: y^2 = x^3 + x`.
//! * [`Fq2`] — the quadratic extension `Fq[i]/(i^2 + 1)`, target of the
//!   embedding-degree-2 Tate pairing.

pub mod params;

mod fq;
mod fq2;
mod fr;

pub use fq::{Fq, FqParameters};
pub use fq2::Fq2;
pub use fr::{Fr, FrParameters};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{batch_inverse, Field, PrimeField};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u8; 32]>().prop_map(|b| Fr::from_bytes_le_mod_order(&b))
    }

    fn arb_fq() -> impl Strategy<Value = Fq> {
        any::<[u8; 32]>().prop_map(|b| Fq::from_bytes_le_mod_order(&b))
    }

    #[test]
    fn fr_basic_arithmetic() {
        let two = Fr::from_u64(2);
        let three = Fr::from_u64(3);
        assert_eq!(two * three, Fr::from_u64(6));
        assert_eq!(two + three, Fr::from_u64(5));
        assert_eq!(three - two, Fr::from_u64(1));
        assert_eq!(two - three, -Fr::from_u64(1));
        assert_eq!(Fr::from_u64(0), Fr::zero());
        assert_eq!(Fr::from_u64(1), Fr::one());
        assert!(Fr::zero().is_zero());
        assert!(!Fr::one().is_zero());
    }

    #[test]
    fn fq_basic_arithmetic() {
        let a = Fq::from_u64(123456789);
        let b = Fq::from_u64(987654321);
        assert_eq!(a * b, Fq::from_u64(123456789 * 987654321));
        assert_eq!(a + b, Fq::from_u64(123456789 + 987654321));
    }

    #[test]
    fn fr_fermat_little_theorem() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fr::random(&mut r);
            if a.is_zero() {
                continue;
            }
            let mut exp = Fr::MODULUS;
            exp[0] -= 1; // modulus is odd, no borrow
            assert_eq!(a.pow(&exp), Fr::one());
        }
    }

    #[test]
    fn fq_fermat_little_theorem() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fq::random(&mut r);
            if a.is_zero() {
                continue;
            }
            let mut exp = Fq::MODULUS;
            exp[0] -= 1;
            assert_eq!(a.pow(&exp), Fq::one());
        }
    }

    #[test]
    fn fr_inverse() {
        let mut r = rng();
        for _ in 0..16 {
            let a = Fr::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fr::one());
        }
        assert!(Fr::zero().inverse().is_none());
    }

    #[test]
    fn fr_root_of_unity_has_correct_order() {
        let omega = Fr::root_of_unity();
        // omega^(2^TWO_ADICITY) == 1 and omega^(2^(TWO_ADICITY-1)) == -1
        let mut x = omega;
        for _ in 0..Fr::TWO_ADICITY - 1 {
            x = x.square();
        }
        assert_eq!(x, -Fr::one());
        assert_eq!(x.square(), Fr::one());
    }

    #[test]
    fn fr_nth_root_of_unity() {
        for log_n in [1u32, 4, 10, 16] {
            let n = 1u64 << log_n;
            let w = Fr::nth_root_of_unity(n).unwrap();
            assert_eq!(w.pow(&[n]), Fr::one());
            assert_ne!(w.pow(&[n / 2]), Fr::one());
        }
        assert!(Fr::nth_root_of_unity(3).is_none());
        assert!(Fr::nth_root_of_unity(1u64 << 40).is_none());
    }

    #[test]
    fn fr_generator_is_not_square_of_small_order() {
        let g = Fr::multiplicative_generator();
        assert!(!g.is_zero());
        // g^((r-1)/2) must be -1 for a generator (it is a quadratic nonresidue).
        assert_eq!(g.pow(&params::FR_MODULUS_MINUS_ONE_DIV_TWO), -Fr::one());
    }

    #[test]
    fn fr_bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fr::random(&mut r);
            let bytes = a.to_bytes_le();
            assert_eq!(Fr::from_bytes_le(&bytes).unwrap(), a);
        }
        // Non-canonical bytes are rejected.
        let mut max = [0xffu8; 32];
        assert!(Fr::from_bytes_le(&max).is_none());
        max[31] = 0;
        // 248-bit value still exceeds the 246-bit modulus.
        assert!(Fr::from_bytes_le(&max).is_none());
    }

    #[test]
    fn fq_sqrt() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fq::random(&mut r);
            let sq = a.square();
            let s = sq.sqrt().expect("square must have a root");
            assert!(s == a || s == -a);
        }
    }

    #[test]
    fn fr_from_i64() {
        assert_eq!(Fr::from_i64(-5) + Fr::from_u64(5), Fr::zero());
        assert_eq!(Fr::from_i64(7), Fr::from_u64(7));
        assert_eq!(
            Fr::from_i64(i64::MIN) + Fr::from_u128(1u128 << 63),
            Fr::zero()
        );
    }

    #[test]
    fn fr_from_u128() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        let expect =
            Fr::from_u64((v >> 64) as u64) * Fr::from_u64(2).pow(&[64]) + Fr::from_u64(v as u64);
        assert_eq!(Fr::from_u128(v), expect);
    }

    #[test]
    fn batch_inverse_matches_individual() {
        let mut r = rng();
        let mut v: Vec<Fr> = (0..20).map(|_| Fr::random(&mut r)).collect();
        v[3] = Fr::zero();
        v[11] = Fr::zero();
        let expected: Vec<Fr> = v
            .iter()
            .map(|x| x.inverse().unwrap_or_else(Fr::zero))
            .collect();
        batch_inverse(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn fq2_is_a_field() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fq2::random(&mut r);
            let b = Fq2::random(&mut r);
            let c = Fq2::random(&mut r);
            assert_eq!((a + b) * c, a * c + b * c);
            assert_eq!(a * b, b * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq2::one());
            }
        }
    }

    #[test]
    fn fq2_nonresidue_structure() {
        // i^2 == -1
        let i = Fq2::new(Fq::zero(), Fq::one());
        assert_eq!(i * i, -Fq2::one());
        // conjugation is the Frobenius map x -> x^p
        let mut r = rng();
        let a = Fq2::random(&mut r);
        assert_eq!(a.frobenius(), a.pow(&Fq::MODULUS));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let x = Fr::from_u64(42);
        assert_eq!(format!("{x}"), "42");
        assert!(format!("{x:?}").contains("Fp"));
        let y = Fq2::new(Fq::from_u64(1), Fq::from_u64(2));
        assert!(!format!("{y}").is_empty());
        assert!(!format!("{y:?}").is_empty());
    }

    proptest! {
        #[test]
        fn prop_fr_add_commutative(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_fr_mul_associative(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_fr_distributive(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_fr_sub_is_add_neg(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn prop_fr_double_and_square(a in arb_fr()) {
            prop_assert_eq!(a.double(), a + a);
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn prop_fr_inverse(a in arb_fr()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.inverse().unwrap(), Fr::one());
            }
        }

        #[test]
        fn prop_fr_canonical_roundtrip(a in arb_fr()) {
            prop_assert_eq!(Fr::from_canonical(a.to_canonical()).unwrap(), a);
        }

        #[test]
        fn prop_fq_mul_associative(a in arb_fq(), b in arb_fq(), c in arb_fq()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_fq_add_neg_is_zero(a in arb_fq()) {
            prop_assert_eq!(a + (-a), Fq::zero());
        }
    }
}
