//! The Groth16 prover.
//!
//! Cost profile: one QAP quotient computation (three iFFTs + three coset
//! FFTs over the constraint domain) and four multi-scalar multiplications
//! over the CRS (`A`, `B`, `H` and `L` queries). This is exactly the cost
//! the paper's CRPC/PSQ optimisations shrink, by reducing the number of
//! constraints (FFT size, `H` length) and the witness/wire count (MSM
//! lengths).

use rand::Rng;
use zkvc_curve::msm;
use zkvc_ff::{Field, Fr};
use zkvc_qap::compute_h_coefficients_in;
use zkvc_r1cs::ConstraintSystem;

use crate::keys::{Proof, ProvingKey};

/// Produces a proof from a legacy single-pass constraint system: the full
/// assignment is extracted and handed to [`prove_assignment`]. The
/// constraint matrices come from the shape compiled at setup time — the
/// system's own constraints are *not* re-extracted.
///
/// # Panics
/// Panics if the assignment does not satisfy the constraint system (callers
/// should check [`ConstraintSystem::is_satisfied`] when the witness comes
/// from untrusted code) or if the circuit shape does not match the proving
/// key.
pub fn prove<R: Rng + ?Sized>(pk: &ProvingKey, cs: &ConstraintSystem<Fr>, rng: &mut R) -> Proof {
    assert_eq!(
        pk.shape.num_variables(),
        cs.num_variables(),
        "proving key does not match this circuit"
    );
    prove_assignment(pk, &cs.full_assignment(), rng)
}

/// Produces a proof from a flat assignment `z = (1, instance, witness)`
/// against the shape compiled into the proving key. This is the whole
/// prove-many hot path: no constraint synthesis, no matrix extraction —
/// just the QAP quotient FFTs and the four MSMs.
///
/// # Panics
/// Panics if `z` does not match the key's variable count or does not
/// satisfy the compiled constraints (the quotient division would not be
/// exact).
pub fn prove_assignment<R: Rng + ?Sized>(pk: &ProvingKey, z: &[Fr], rng: &mut R) -> Proof {
    assert_eq!(
        pk.a_query.len(),
        z.len(),
        "assignment length does not match the proving key"
    );
    let matrices = &pk.shape.matrices;

    // Quotient polynomial H(X), over the domain cached in the proving key
    // (twiddle tables are built once per key, not once per proof).
    let h = compute_h_coefficients_in(&pk.h_domain, matrices, z);

    // Zero-knowledge blinders.
    let r = Fr::random(rng);
    let s = Fr::random(rng);

    let num_instance = pk.num_instance;
    let witness = &z[num_instance + 1..];

    // A = alpha + sum_i z_i A_i(tau) + r * delta
    let a_acc = msm(&pk.a_query, z);
    let a = a_acc + pk.vk.alpha_g1.to_projective() + pk.delta_g1.to_projective() * r;

    // B = beta + sum_i z_i B_i(tau) + s * delta
    let b_acc_g2 = msm(&pk.b_g2_query, z);
    let b_g2 = b_acc_g2 + pk.vk.beta_g2.to_projective() + pk.vk.delta_g2.to_projective() * s;
    let b_acc_g1 = msm(&pk.b_g1_query, z);
    let b_g1 = b_acc_g1 + pk.beta_g1.to_projective() + pk.delta_g1.to_projective() * s;

    // C = sum_w z_w L_w + sum_i h_i [tau^i Z/delta] + s*A + r*B1 - r*s*delta
    let l_acc = msm(&pk.l_query, witness);
    let h_acc = msm(&pk.h_query[..h.len()], &h);
    let c = l_acc + h_acc + a * s + b_g1 * r - pk.delta_g1.to_projective() * (r * s);

    Proof {
        a: a.to_affine(),
        b: b_g2.to_affine(),
        c: c.to_affine(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::setup;
    use crate::verifier::verify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;
    use zkvc_r1cs::LinearCombination;

    /// Build the cubic circuit x^3 + x + 5 = out.
    fn cubic(x_val: u64) -> ConstraintSystem<Fr> {
        let out_val = x_val * x_val * x_val + x_val + 5;
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(out_val));
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let x2 = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x3 = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x.into(), x.into(), x2.into());
        cs.enforce(x2.into(), x.into(), x3.into());
        cs.enforce(
            LinearCombination::from(x3)
                + LinearCombination::from(x)
                + LinearCombination::constant(Fr::from_u64(5)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
        cs
    }

    #[test]
    fn prove_and_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        let cs = cubic(3);
        let (pk, vk) = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng);
        assert!(verify(&vk, cs.instance_assignment(), &proof));
    }

    #[test]
    fn verification_rejects_wrong_public_input() {
        let mut rng = StdRng::seed_from_u64(43);
        let cs = cubic(3);
        let (pk, vk) = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng);
        assert!(!verify(&vk, &[Fr::from_u64(36)], &proof));
    }

    #[test]
    fn verification_rejects_tampered_proof() {
        let mut rng = StdRng::seed_from_u64(44);
        let cs = cubic(3);
        let (pk, vk) = setup(&cs, &mut rng);
        let mut proof = prove(&pk, &cs, &mut rng);
        proof.a = (proof.a.to_projective() + zkvc_curve::G1Projective::generator()).to_affine();
        assert!(!verify(&vk, cs.instance_assignment(), &proof));
    }

    #[test]
    fn proofs_are_bit_identical_under_any_tune_profile() {
        // The tune subsystem only reschedules the MSM/FFT kernels the
        // prover calls into; under fixed prover randomness the proof
        // bytes must not change however extreme the installed profile.
        let cs = cubic(3);
        let mut setup_rng = StdRng::seed_from_u64(42);
        let (pk, _) = setup(&cs, &mut setup_rng);
        let mut rng = StdRng::seed_from_u64(47);
        let baseline = prove(&pk, &cs, &mut rng);

        let mut extreme = zkvc_curve::tune::TuneProfile::static_profile();
        extreme.msm.affine_mask = !0u64;
        extreme.msm.windows = [3u8; 33];
        extreme.fft.par_mask = !0u64;
        let previous = zkvc_curve::tune::activate(&extreme);
        let mut rng = StdRng::seed_from_u64(47);
        let tuned = prove(&pk, &cs, &mut rng);
        zkvc_curve::tune::restore(previous);

        assert_eq!(tuned, baseline);
    }

    #[test]
    fn proofs_are_randomised_but_all_verify() {
        let mut rng = StdRng::seed_from_u64(45);
        let cs = cubic(5);
        let (pk, vk) = setup(&cs, &mut rng);
        let p1 = prove(&pk, &cs, &mut rng);
        let p2 = prove(&pk, &cs, &mut rng);
        // zero-knowledge blinding makes proofs distinct
        assert_ne!(p1, p2);
        assert!(verify(&vk, cs.instance_assignment(), &p1));
        assert!(verify(&vk, cs.instance_assignment(), &p2));
    }

    #[test]
    fn different_witnesses_same_statement() {
        // x^2 = 49 has two witnesses (7 and -7); both must prove.
        let mut rng = StdRng::seed_from_u64(46);
        let make = |x: Fr| {
            let mut cs = ConstraintSystem::<Fr>::new();
            let out = cs.alloc_instance(Fr::from_u64(49));
            let xv = cs.alloc_witness(x);
            cs.enforce(xv.into(), xv.into(), out.into());
            cs
        };
        let cs = make(Fr::from_u64(7));
        let (pk, vk) = setup(&cs, &mut rng);
        let p1 = prove(&pk, &cs, &mut rng);
        let cs2 = make(-Fr::from_u64(7));
        let p2 = prove(&pk, &cs2, &mut rng);
        assert!(verify(&vk, &[Fr::from_u64(49)], &p1));
        assert!(verify(&vk, &[Fr::from_u64(49)], &p2));
    }
}
