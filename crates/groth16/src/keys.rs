//! Key material: the circuit-specific CRS (proving key + verifying key) and
//! the proof object.

use std::sync::Arc;

use rand::Rng;
use zkvc_curve::{pairing, G1Affine, G1Projective, Gt};
use zkvc_ff::{Field, Fr};
use zkvc_qap::evaluate_qap_at_point;
use zkvc_r1cs::{CompiledShape, ConstraintSystem};

/// A Groth16 proof: three group elements, independent of circuit size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// `[A]_1`.
    pub a: G1Affine,
    /// `[B]_2` (same group as G1 for the Type-1 pairing).
    pub b: G1Affine,
    /// `[C]_1`.
    pub c: G1Affine,
}

impl Proof {
    /// Serialised proof size in bytes (uncompressed points).
    pub fn size_in_bytes(&self) -> usize {
        3 * 65
    }

    /// Serialises the proof.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_in_bytes());
        out.extend_from_slice(&self.a.to_bytes());
        out.extend_from_slice(&self.b.to_bytes());
        out.extend_from_slice(&self.c.to_bytes());
        out
    }

    /// Deserialises a proof, validating that all points are on the curve.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 3 * 65 {
            return None;
        }
        let mut buf = [0u8; 65];
        buf.copy_from_slice(&bytes[..65]);
        let a = G1Affine::from_bytes(&buf)?;
        buf.copy_from_slice(&bytes[65..130]);
        let b = G1Affine::from_bytes(&buf)?;
        buf.copy_from_slice(&bytes[130..195]);
        let c = G1Affine::from_bytes(&buf)?;
        Some(Proof { a, b, c })
    }
}

/// The verification key: enough to check proofs for one circuit.
#[derive(Clone, Debug)]
pub struct VerifyingKey {
    /// `[alpha]_1`.
    pub alpha_g1: G1Affine,
    /// `[beta]_2`.
    pub beta_g2: G1Affine,
    /// `[gamma]_2`.
    pub gamma_g2: G1Affine,
    /// `[delta]_2`.
    pub delta_g2: G1Affine,
    /// `[(beta A_i(tau) + alpha B_i(tau) + C_i(tau)) / gamma]_1` for the
    /// constant-one wire and every instance variable.
    pub gamma_abc_g1: Vec<G1Affine>,
    /// Cached `e(alpha, beta)` used by every verification.
    pub alpha_beta_gt: Gt,
}

impl VerifyingKey {
    /// Serialised size in bytes (used for the paper's proof-size/verifier
    /// cost accounting).
    pub fn size_in_bytes(&self) -> usize {
        (4 + self.gamma_abc_g1.len()) * 65 + 64
    }

    /// Canonical byte serialisation: the four fixed points, then a `u32`
    /// count followed by the `gamma_abc` points. The cached pairing
    /// `e(alpha, beta)` is *not* stored; [`Self::from_bytes`] recomputes it,
    /// so a deserialised key cannot carry an inconsistent cache.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((4 + self.gamma_abc_g1.len()) * 65 + 4);
        out.extend_from_slice(&self.alpha_g1.to_bytes());
        out.extend_from_slice(&self.beta_g2.to_bytes());
        out.extend_from_slice(&self.gamma_g2.to_bytes());
        out.extend_from_slice(&self.delta_g2.to_bytes());
        out.extend_from_slice(&(self.gamma_abc_g1.len() as u32).to_le_bytes());
        for p in &self.gamma_abc_g1 {
            out.extend_from_slice(&p.to_bytes());
        }
        out
    }

    /// Deserialises a key written by [`Self::to_bytes`], validating that
    /// every point is on the curve and recomputing the cached pairing.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let point = |off: usize| -> Option<G1Affine> {
            let mut buf = [0u8; 65];
            buf.copy_from_slice(bytes.get(off..off + 65)?);
            G1Affine::from_bytes(&buf)
        };
        let alpha_g1 = point(0)?;
        let beta_g2 = point(65)?;
        let gamma_g2 = point(130)?;
        let delta_g2 = point(195)?;
        let count_bytes: [u8; 4] = bytes.get(260..264)?.try_into().ok()?;
        let count = u32::from_le_bytes(count_bytes) as usize;
        if bytes.len() != 264 + count * 65 {
            return None;
        }
        let mut gamma_abc_g1 = Vec::with_capacity(count);
        for i in 0..count {
            gamma_abc_g1.push(point(264 + i * 65)?);
        }
        Some(VerifyingKey {
            alpha_g1,
            beta_g2,
            gamma_g2,
            delta_g2,
            gamma_abc_g1,
            alpha_beta_gt: pairing(&alpha_g1, &beta_g2),
        })
    }
}

/// The proving key (CRS): everything the prover needs.
#[derive(Clone, Debug)]
pub struct ProvingKey {
    /// The verification key (the prover embeds it in proofs' metadata).
    pub vk: VerifyingKey,
    /// The compiled circuit shape (CSR matrices) the CRS was generated
    /// for. Proving consumes it directly, so a statement only supplies its
    /// flat witness assignment — no per-proof constraint synthesis or
    /// matrix extraction.
    pub shape: Arc<CompiledShape<Fr>>,
    /// The QAP quotient domain (with its precomputed twiddle tables), built
    /// once at setup so repeated proofs against this key skip the per-proof
    /// domain construction.
    pub h_domain: zkvc_ff::EvaluationDomain<Fr>,
    /// `[beta]_1`.
    pub beta_g1: G1Affine,
    /// `[delta]_1`.
    pub delta_g1: G1Affine,
    /// `[A_i(tau)]_1` for every variable.
    pub a_query: Vec<G1Affine>,
    /// `[B_i(tau)]_1` for every variable.
    pub b_g1_query: Vec<G1Affine>,
    /// `[B_i(tau)]_2` for every variable.
    pub b_g2_query: Vec<G1Affine>,
    /// `[tau^i Z(tau) / delta]_1` for `i = 0..d-1`.
    pub h_query: Vec<G1Affine>,
    /// `[(beta A_i + alpha B_i + C_i) / delta]_1` for witness variables.
    pub l_query: Vec<G1Affine>,
    /// Number of instance variables (excluding the constant one).
    pub num_instance: usize,
}

impl ProvingKey {
    /// Total number of group elements in the CRS (a proxy for CRS size).
    pub fn num_elements(&self) -> usize {
        self.a_query.len()
            + self.b_g1_query.len()
            + self.b_g2_query.len()
            + self.h_query.len()
            + self.l_query.len()
            + self.vk.gamma_abc_g1.len()
            + 6
    }
}

/// Runs the circuit-specific trusted setup from a legacy single-pass
/// constraint system. The constraint *structure* of `cs` is what matters
/// here; the assigned values are ignored. Equivalent to
/// [`setup_shape`] over [`CompiledShape::from_cs`].
pub fn setup<R: Rng + ?Sized>(
    cs: &ConstraintSystem<Fr>,
    rng: &mut R,
) -> (ProvingKey, VerifyingKey) {
    setup_shape(Arc::new(CompiledShape::from_cs(cs)), rng)
}

/// Runs the circuit-specific trusted setup against a compiled shape,
/// producing a proving key and a verification key. This is the witness-free
/// entry point: nothing here ever sees an assignment, only the CSR
/// constraint matrices.
pub fn setup_shape<R: Rng + ?Sized>(
    shape: Arc<CompiledShape<Fr>>,
    rng: &mut R,
) -> (ProvingKey, VerifyingKey) {
    let matrices = &shape.matrices;

    // Toxic waste.
    let tau = Fr::random(rng);
    let alpha = Fr::random(rng);
    let beta = Fr::random(rng);
    let gamma = loop {
        let g = Fr::random(rng);
        if !g.is_zero() {
            break g;
        }
    };
    let delta = loop {
        let d = Fr::random(rng);
        if !d.is_zero() {
            break d;
        }
    };
    let gamma_inv = gamma.inverse().expect("gamma != 0");
    let delta_inv = delta.inverse().expect("delta != 0");

    let qap = evaluate_qap_at_point(matrices, &tau);
    let num_vars = matrices.num_variables();
    let num_instance = matrices.num_instance;

    let g = G1Projective::generator();

    // scalar batches -> projective points -> batch normalize
    let a_query_s: Vec<Fr> = qap.a.clone();
    let b_query_s: Vec<Fr> = qap.b.clone();

    let mut gamma_abc_s = Vec::with_capacity(num_instance + 1);
    let mut l_query_s = Vec::with_capacity(num_vars - num_instance - 1);
    for i in 0..num_vars {
        let combined = beta * qap.a[i] + alpha * qap.b[i] + qap.c[i];
        if i <= num_instance {
            gamma_abc_s.push(combined * gamma_inv);
        } else {
            l_query_s.push(combined * delta_inv);
        }
    }

    // h_query scalars: tau^i * Z(tau) / delta for i in 0..d-1
    let d = qap.domain_size;
    let zt_over_delta = qap.zt * delta_inv;
    let mut h_query_s = Vec::with_capacity(d - 1);
    let mut tau_pow = Fr::one();
    for _ in 0..d - 1 {
        h_query_s.push(tau_pow * zt_over_delta);
        tau_pow *= tau;
    }

    let to_affine = |scalars: &[Fr]| -> Vec<G1Affine> {
        let projective: Vec<G1Projective> = scalars.iter().map(|s| g * *s).collect();
        G1Projective::batch_to_affine(&projective)
    };

    let a_query = to_affine(&a_query_s);
    let b_query = to_affine(&b_query_s);
    let h_query = to_affine(&h_query_s);
    let l_query = to_affine(&l_query_s);
    let gamma_abc_g1 = to_affine(&gamma_abc_s);

    let alpha_g1 = (g * alpha).to_affine();
    let beta_g1 = (g * beta).to_affine();
    let beta_g2 = beta_g1;
    let gamma_g2 = (g * gamma).to_affine();
    let delta_g1 = (g * delta).to_affine();
    let delta_g2 = delta_g1;

    let vk = VerifyingKey {
        alpha_g1,
        beta_g2,
        gamma_g2,
        delta_g2,
        gamma_abc_g1,
        alpha_beta_gt: pairing(&alpha_g1, &beta_g2),
    };

    let h_domain = zkvc_qap::qap_domain::<Fr>(matrices.num_constraints())
        .expect("constraint count exceeds the field's FFT capacity");
    let pk = ProvingKey {
        vk: vk.clone(),
        shape,
        h_domain,
        beta_g1,
        delta_g1,
        a_query,
        b_g1_query: b_query.clone(),
        b_g2_query: b_query,
        h_query,
        l_query,
        num_instance,
    };

    (pk, vk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;

    fn square_circuit() -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(49));
        let x = cs.alloc_witness(Fr::from_u64(7));
        cs.enforce(x.into(), x.into(), out.into());
        cs
    }

    #[test]
    fn setup_shapes() {
        let cs = square_circuit();
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, vk) = setup(&cs, &mut rng);
        assert_eq!(pk.a_query.len(), cs.num_variables());
        assert_eq!(pk.b_g2_query.len(), cs.num_variables());
        assert_eq!(vk.gamma_abc_g1.len(), cs.num_instance() + 1);
        assert_eq!(pk.l_query.len(), cs.num_witness());
        assert!(pk.num_elements() > 0);
        assert!(vk.size_in_bytes() > 0);
    }

    #[test]
    fn proof_serialization_roundtrip() {
        let g = G1Projective::generator().to_affine();
        let p = Proof { a: g, b: g, c: g };
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.size_in_bytes());
        assert_eq!(Proof::from_bytes(&bytes).unwrap(), p);
        assert!(Proof::from_bytes(&bytes[..100]).is_none());
        let mut corrupted = bytes;
        corrupted[1] ^= 0xff;
        assert!(Proof::from_bytes(&corrupted).is_none());
    }

    #[test]
    fn verifying_key_serialization_roundtrip() {
        let cs = square_circuit();
        let mut rng = StdRng::seed_from_u64(4);
        let (_pk, vk) = setup(&cs, &mut rng);
        let bytes = vk.to_bytes();
        let back = VerifyingKey::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.alpha_g1, vk.alpha_g1);
        assert_eq!(back.beta_g2, vk.beta_g2);
        assert_eq!(back.gamma_g2, vk.gamma_g2);
        assert_eq!(back.delta_g2, vk.delta_g2);
        assert_eq!(back.gamma_abc_g1, vk.gamma_abc_g1);
        // The pairing cache must be recomputed, not trusted from the wire.
        assert_eq!(back.alpha_beta_gt, vk.alpha_beta_gt);
        // Truncated and padded inputs are rejected.
        assert!(VerifyingKey::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes;
        padded.push(0);
        assert!(VerifyingKey::from_bytes(&padded).is_none());
    }

    #[test]
    fn deserialized_key_verifies_real_proof_and_flips_fail() {
        // End-to-end: proof + vk cross a byte boundary, then every
        // single-bit flip of the proof is either rejected at decode time or
        // fails verification.
        let cs = square_circuit();
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, vk) = setup(&cs, &mut rng);
        let proof = crate::prove(&pk, &cs, &mut rng);

        let vk2 = VerifyingKey::from_bytes(&vk.to_bytes()).unwrap();
        let proof_bytes = proof.to_bytes();
        let proof2 = Proof::from_bytes(&proof_bytes).unwrap();
        assert!(crate::verify(&vk2, cs.instance_assignment(), &proof2));

        for byte_idx in 0..proof_bytes.len() {
            let mut tampered = proof_bytes.clone();
            tampered[byte_idx] ^= 1;
            match Proof::from_bytes(&tampered) {
                None => {} // rejected by curve-membership validation
                Some(p) => assert!(
                    !crate::verify(&vk2, cs.instance_assignment(), &p),
                    "flipped byte {byte_idx} still verified"
                ),
            }
        }
    }
}
