//! The Groth16 verifier: one small MSM over the public inputs plus three
//! pairings (the fourth, `e(alpha, beta)`, is cached in the verification
//! key).

use zkvc_curve::{msm, pairing, G1Projective};
use zkvc_ff::Fr;

use crate::keys::{Proof, VerifyingKey};

/// Aggregates the public inputs into the single group element
/// `sum_i x_i * gamma_abc_i` (with `x_0 = 1`).
///
/// # Panics
/// Panics if the number of public inputs does not match the verification
/// key.
pub fn prepare_inputs(vk: &VerifyingKey, public_inputs: &[Fr]) -> G1Projective {
    assert_eq!(
        public_inputs.len() + 1,
        vk.gamma_abc_g1.len(),
        "public input count does not match the verification key"
    );
    let mut scalars = Vec::with_capacity(public_inputs.len() + 1);
    scalars.push(zkvc_ff::Field::one());
    scalars.extend_from_slice(public_inputs);
    msm(&vk.gamma_abc_g1, &scalars)
}

/// Verifies a proof against the public inputs.
///
/// Checks the Groth16 equation
/// `e(A, B) = e(alpha, beta) * e(sum_i x_i gamma_abc_i, gamma) * e(C, delta)`.
pub fn verify(vk: &VerifyingKey, public_inputs: &[Fr], proof: &Proof) -> bool {
    if public_inputs.len() + 1 != vk.gamma_abc_g1.len() {
        return false;
    }
    if !proof.a.is_on_curve() || !proof.b.is_on_curve() || !proof.c.is_on_curve() {
        return false;
    }
    let acc = prepare_inputs(vk, public_inputs).to_affine();

    let lhs = pairing(&proof.a, &proof.b);
    let rhs = vk.alpha_beta_gt + pairing(&acc, &vk.gamma_g2) + pairing(&proof.c, &vk.delta_g2);
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::setup;
    use crate::prover::prove;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::{Field, PrimeField};
    use zkvc_r1cs::ConstraintSystem;

    #[test]
    fn wrong_input_count_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(4));
        let x = cs.alloc_witness(Fr::from_u64(2));
        cs.enforce(x.into(), x.into(), out.into());
        let (pk, vk) = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng);
        assert!(verify(&vk, &[Fr::from_u64(4)], &proof));
        // too many / too few public inputs
        assert!(!verify(&vk, &[Fr::from_u64(4), Fr::from_u64(1)], &proof));
        assert!(!verify(&vk, &[], &proof));
    }

    #[test]
    fn multi_instance_circuit() {
        // public (p, q), witness (a, b) with a*b = p and a+b = q
        let mut rng = StdRng::seed_from_u64(6);
        let mut cs = ConstraintSystem::<Fr>::new();
        let p = cs.alloc_instance(Fr::from_u64(21));
        let q = cs.alloc_instance(Fr::from_u64(10));
        let a = cs.alloc_witness(Fr::from_u64(3));
        let b = cs.alloc_witness(Fr::from_u64(7));
        cs.enforce(a.into(), b.into(), p.into());
        cs.enforce(
            zkvc_r1cs::LinearCombination::from(a) + zkvc_r1cs::LinearCombination::from(b),
            zkvc_r1cs::LinearCombination::constant(Fr::one()),
            q.into(),
        );
        assert!(cs.is_satisfied());
        let (pk, vk) = setup(&cs, &mut rng);
        let proof = prove(&pk, &cs, &mut rng);
        assert!(verify(&vk, &[Fr::from_u64(21), Fr::from_u64(10)], &proof));
        // swapped public inputs must fail
        assert!(!verify(&vk, &[Fr::from_u64(10), Fr::from_u64(21)], &proof));
    }
}
