//! # zkvc-groth16
//!
//! A from-scratch implementation of the Groth16 zk-SNARK
//! (J. Groth, "On the Size of Pairing-Based Non-Interactive Arguments",
//! EUROCRYPT 2016) over the zkVC pairing curve. This is the `zkVC-G`
//! backend of the paper: constant-size proofs (3 group elements), constant
//! verification time (3 pairings + one small MSM), and a prover dominated by
//! three multi-scalar multiplications plus the QAP quotient FFTs.
//!
//! The trusted setup is circuit-specific; `zkvc-core` re-runs it per matrix
//! shape, exactly as libsnark does for the paper's experiments.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_groth16::{setup, prove, verify};
//! use zkvc_r1cs::{ConstraintSystem, LinearCombination};
//! use zkvc_ff::{Fr, PrimeField};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // x * x = 25 with public 25.
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let out = cs.alloc_instance(Fr::from_u64(25));
//! let x = cs.alloc_witness(Fr::from_u64(5));
//! cs.enforce(x.into(), x.into(), out.into());
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let (pk, vk) = setup(&cs, &mut rng);
//! let proof = prove(&pk, &cs, &mut rng);
//! assert!(verify(&vk, cs.instance_assignment(), &proof));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod keys;
mod prover;
mod verifier;

pub use keys::{setup, setup_shape, Proof, ProvingKey, VerifyingKey};
pub use prover::{prove, prove_assignment};
pub use verifier::{prepare_inputs, verify};
