//! The Spartan-style transparent SNARK for R1CS.
//!
//! See the crate-level docs for the protocol outline and the deviation from
//! the original Spartan construction.

use rand::Rng;
use zkvc_curve::G1Projective;
use zkvc_ff::poly::eq_evals;
use zkvc_ff::{Field, Fr, MultilinearPolynomial};
use zkvc_hash::Transcript;
use zkvc_r1cs::{CompiledShape, ConstraintSystem, R1csMatrices, SparseMatrix};

use crate::ipa::{InnerProductProof, IpaGenerators};
use crate::sumcheck::{self, SumcheckProof};

const TRANSCRIPT_LABEL: &[u8] = b"zkvc-spartan-v1";

/// The shared, transparently-derived instance description: the remapped
/// R1CS matrices (witness columns moved to the upper half of the variable
/// space) and the commitment generators.
#[derive(Clone, Debug)]
struct Instance {
    a: SparseMatrix<Fr>,
    b: SparseMatrix<Fr>,
    c: SparseMatrix<Fr>,
    num_io: usize,
    num_witness: usize,
    /// Half the padded variable-space size; public part occupies
    /// `[0, n_half)`, witness occupies `[n_half, 2 n_half)`.
    n_half: usize,
    /// Padded constraint count.
    m_pad: usize,
    log_m: usize,
    log_cols: usize,
    ipa_gens: IpaGenerators,
}

impl Instance {
    fn from_cs(cs: &ConstraintSystem<Fr>) -> Self {
        Self::from_matrices(&cs.to_matrices())
    }

    /// Builds the remapped instance from CSR matrices (the compiled-shape
    /// path; no constraint system required). Column remapping is monotone
    /// (instance columns keep their index, witness columns shift up into
    /// the upper half), so the CSR rows stay sorted.
    fn from_matrices(m: &R1csMatrices<Fr>) -> Self {
        let num_io = m.num_instance;
        let num_witness = m.num_witness;
        let n_half = (num_io + 1).max(num_witness).max(2).next_power_of_two();
        let num_cols = 2 * n_half;
        let m_pad = m.num_constraints().max(2).next_power_of_two();
        let log_m = m_pad.trailing_zeros() as usize;
        let log_cols = num_cols.trailing_zeros() as usize;

        let remap = |mat: &SparseMatrix<Fr>| SparseMatrix {
            num_rows: mat.num_rows,
            num_cols,
            row_ptr: mat.row_ptr.clone(),
            col_idx: mat
                .col_idx
                .iter()
                .map(|col| {
                    if *col <= num_io {
                        *col
                    } else {
                        n_half + (*col - num_io - 1)
                    }
                })
                .collect(),
            vals: mat.vals.clone(),
        };

        Instance {
            a: remap(&m.a),
            b: remap(&m.b),
            c: remap(&m.c),
            num_io,
            num_witness,
            n_half,
            m_pad,
            log_m,
            log_cols,
            ipa_gens: IpaGenerators::new(n_half, b"zkvc-spartan-witness"),
        }
    }

    /// Builds the full (remapped, padded) assignment vector from io + witness.
    fn build_z(&self, io: &[Fr], witness: &[Fr]) -> Vec<Fr> {
        let mut z = vec![Fr::zero(); 2 * self.n_half];
        z[0] = Fr::one();
        z[1..1 + io.len()].copy_from_slice(io);
        z[self.n_half..self.n_half + witness.len()].copy_from_slice(witness);
        z
    }

    fn start_transcript(&self, io: &[Fr]) -> Transcript {
        let mut t = Transcript::new(TRANSCRIPT_LABEL);
        t.append_u64(b"num constraints", self.a.num_rows as u64);
        t.append_u64(b"num io", self.num_io as u64);
        t.append_u64(b"num witness", self.num_witness as u64);
        t.append_fields(b"io", io);
        t
    }
}

/// A Spartan-style proof.
#[derive(Clone, Debug)]
pub struct SpartanProof {
    /// Commitment to the (padded) witness vector.
    pub comm_w: G1Projective,
    /// First (degree-3) sum-check proof.
    pub sc1: SumcheckProof,
    /// Claimed evaluations `(Az)(rx)`, `(Bz)(rx)`, `(Cz)(rx)`.
    pub claims: (Fr, Fr, Fr),
    /// Second (degree-2) sum-check proof.
    pub sc2: SumcheckProof,
    /// Claimed witness-MLE evaluation at `ry[..last]`.
    pub eval_w: Fr,
    /// Opening of the witness commitment at that point.
    pub ipa: InnerProductProof,
}

impl SpartanProof {
    /// Serialised proof size in bytes: one commitment point, the sum-check
    /// field elements, three claims, the witness evaluation and the IPA.
    pub fn size_in_bytes(&self) -> usize {
        65 + 32 * (self.sc1.num_field_elements() + self.sc2.num_field_elements() + 4)
            + self.ipa.size_in_bytes()
    }
}

/// Prover-side preprocessed state for a fixed circuit structure. The
/// instance is behind an `Arc` so the matching verifier (and any clones
/// held by a key cache) share one copy of the remapped matrices and
/// commitment generators.
#[derive(Clone, Debug)]
pub struct SpartanProver {
    instance: std::sync::Arc<Instance>,
}

/// Verifier-side preprocessed state for a fixed circuit structure.
#[derive(Clone, Debug)]
pub struct SpartanVerifier {
    instance: std::sync::Arc<Instance>,
}

impl SpartanProver {
    /// Preprocesses the circuit structure (no trusted setup — everything is
    /// derived transparently).
    pub fn preprocess(cs: &ConstraintSystem<Fr>) -> Self {
        SpartanProver {
            instance: std::sync::Arc::new(Instance::from_cs(cs)),
        }
    }

    /// Preprocesses a compiled shape — the witness-free entry point used
    /// by the two-pass pipeline.
    pub fn preprocess_shape(shape: &CompiledShape<Fr>) -> Self {
        SpartanProver {
            instance: std::sync::Arc::new(Instance::from_matrices(&shape.matrices)),
        }
    }

    /// Number of constraints in the preprocessed structure.
    pub fn num_constraints(&self) -> usize {
        self.instance.a.num_rows
    }

    /// Number of variables (constant + instance + witness) in the original
    /// (un-padded) circuit.
    pub fn num_variables(&self) -> usize {
        1 + self.instance.num_io + self.instance.num_witness
    }

    /// Builds the matching verifier, sharing the already-preprocessed
    /// instance instead of running the `from_cs` pass (matrix remap and
    /// generator derivation) a second time.
    pub fn to_verifier(&self) -> SpartanVerifier {
        SpartanVerifier {
            instance: std::sync::Arc::clone(&self.instance),
        }
    }

    /// Produces a proof for the assignment held in `cs`.
    ///
    /// # Panics
    /// Panics if the circuit shape differs from the preprocessed structure.
    pub fn prove<R: Rng + ?Sized>(&self, cs: &ConstraintSystem<Fr>, rng: &mut R) -> SpartanProof {
        self.prove_assignment(cs.instance_assignment(), cs.witness_assignment(), rng)
    }

    /// Produces a proof from a flat instance/witness assignment against the
    /// preprocessed structure — the prove-many hot path: no constraint
    /// system, no matrix extraction, just the sum-checks and the opening.
    ///
    /// # Panics
    /// Panics if the assignment lengths differ from the preprocessed
    /// structure.
    pub fn prove_assignment<R: Rng + ?Sized>(
        &self,
        io: &[Fr],
        witness: &[Fr],
        _rng: &mut R,
    ) -> SpartanProof {
        let inst = &self.instance;
        assert_eq!(io.len(), inst.num_io, "instance count mismatch");
        assert_eq!(witness.len(), inst.num_witness, "witness count mismatch");

        let io = io.to_vec();
        let mut witness = witness.to_vec();
        witness.resize(inst.n_half, Fr::zero());
        let z = inst.build_z(&io, &witness);

        let mut transcript = inst.start_transcript(&io);

        // 1. commit to the witness
        let comm_w = inst.ipa_gens.commit(&witness);
        transcript.append_point(b"comm_w", &comm_w.to_affine());

        // 2. first sum-check: sum_x eq(tau,x) (Az(x) Bz(x) - Cz(x)) = 0
        let tau = transcript.challenge_fields(b"tau", inst.log_m);
        let mut az = inst.a.mul_vector(&z);
        let mut bz = inst.b.mul_vector(&z);
        let mut cz = inst.c.mul_vector(&z);
        az.resize(inst.m_pad, Fr::zero());
        bz.resize(inst.m_pad, Fr::zero());
        cz.resize(inst.m_pad, Fr::zero());
        let e = MultilinearPolynomial::from_evaluations(eq_evals(&tau));
        let az_p = MultilinearPolynomial::from_evaluations(az);
        let bz_p = MultilinearPolynomial::from_evaluations(bz);
        let cz_p = MultilinearPolynomial::from_evaluations(cz);
        let (sc1, rx, (_e_eval, va, vb, vc)) =
            sumcheck::prove_cubic(&Fr::zero(), &e, &az_p, &bz_p, &cz_p, &mut transcript);

        transcript.append_field(b"va", &va);
        transcript.append_field(b"vb", &vb);
        transcript.append_field(b"vc", &vc);

        // 3. second sum-check: batch the three claims into one
        let r_a = transcript.challenge_field(b"r_a");
        let r_b = transcript.challenge_field(b"r_b");
        let r_c = transcript.challenge_field(b"r_c");
        let claim2 = r_a * va + r_b * vb + r_c * vc;

        let chi_rx = eq_evals(&rx);
        let mut m_vec = vec![Fr::zero(); 2 * inst.n_half];
        for (mat, weight) in [(&inst.a, r_a), (&inst.b, r_b), (&inst.c, r_c)] {
            for (x, chi) in chi_rx.iter().enumerate().take(mat.num_rows) {
                let w = weight * *chi;
                if w.is_zero() {
                    continue;
                }
                for (col, val) in mat.row(x) {
                    m_vec[col] += w * *val;
                }
            }
        }
        let m_poly = MultilinearPolynomial::from_evaluations(m_vec);
        let z_poly = MultilinearPolynomial::from_evaluations(z);
        let (sc2, ry, (_m_eval, _z_eval)) =
            sumcheck::prove_quadratic(&claim2, &m_poly, &z_poly, &mut transcript);

        // 4. open the witness MLE at ry[..last]
        let ry_w = &ry[..inst.log_cols - 1];
        let chi_ry_w = eq_evals(ry_w);
        let eval_w: Fr = witness
            .iter()
            .zip(chi_ry_w.iter())
            .map(|(w, c)| *w * *c)
            .sum();
        transcript.append_field(b"eval_w", &eval_w);
        let ipa = InnerProductProof::prove(&inst.ipa_gens, &mut transcript, &witness, &chi_ry_w);

        SpartanProof {
            comm_w,
            sc1,
            claims: (va, vb, vc),
            sc2,
            eval_w,
            ipa,
        }
    }
}

impl SpartanVerifier {
    /// Preprocesses the circuit structure for verification.
    pub fn preprocess(cs: &ConstraintSystem<Fr>) -> Self {
        SpartanVerifier {
            instance: std::sync::Arc::new(Instance::from_cs(cs)),
        }
    }

    /// Preprocesses a compiled shape for verification (witness-free).
    pub fn preprocess_shape(shape: &CompiledShape<Fr>) -> Self {
        SpartanVerifier {
            instance: std::sync::Arc::new(Instance::from_matrices(&shape.matrices)),
        }
    }

    /// Verifies a proof against the public inputs.
    pub fn verify(&self, io: &[Fr], proof: &SpartanProof) -> bool {
        let inst = &self.instance;
        if io.len() != inst.num_io {
            return false;
        }
        let mut transcript = inst.start_transcript(io);
        transcript.append_point(b"comm_w", &proof.comm_w.to_affine());

        // 1. first sum-check
        let tau = transcript.challenge_fields(b"tau", inst.log_m);
        let Some(sub1) = sumcheck::verify(&Fr::zero(), inst.log_m, 3, &proof.sc1, &mut transcript)
        else {
            return false;
        };
        let (va, vb, vc) = proof.claims;
        // eq(tau, rx)
        let eq_tau_rx: Fr = tau
            .iter()
            .zip(sub1.point.iter())
            .map(|(t, r)| *t * *r + (Fr::one() - *t) * (Fr::one() - *r))
            .product();
        if sub1.expected_evaluation != eq_tau_rx * (va * vb - vc) {
            return false;
        }
        transcript.append_field(b"va", &va);
        transcript.append_field(b"vb", &vb);
        transcript.append_field(b"vc", &vc);

        // 2. second sum-check
        let r_a = transcript.challenge_field(b"r_a");
        let r_b = transcript.challenge_field(b"r_b");
        let r_c = transcript.challenge_field(b"r_c");
        let claim2 = r_a * va + r_b * vb + r_c * vc;
        let Some(sub2) = sumcheck::verify(&claim2, inst.log_cols, 2, &proof.sc2, &mut transcript)
        else {
            return false;
        };
        let rx = &sub1.point;
        let ry = &sub2.point;

        // 3. evaluate the public matrices at (rx, ry) — the O(nnz) step that
        //    substitutes for Spartan's SPARK commitments.
        let m_eval = r_a * inst.a.evaluate_mle(rx, ry)
            + r_b * inst.b.evaluate_mle(rx, ry)
            + r_c * inst.c.evaluate_mle(rx, ry);

        // 4. evaluate the assignment MLE: public half directly, witness half
        //    from the claimed (and IPA-opened) evaluation.
        let ry_last = ry[inst.log_cols - 1];
        let ry_low = &ry[..inst.log_cols - 1];
        let mut pub_vec = vec![Fr::zero(); inst.n_half];
        pub_vec[0] = Fr::one();
        pub_vec[1..1 + io.len()].copy_from_slice(io);
        let chi_low = eq_evals(ry_low);
        let eval_pub: Fr = pub_vec
            .iter()
            .zip(chi_low.iter())
            .map(|(p, c)| *p * *c)
            .sum();
        let z_eval = (Fr::one() - ry_last) * eval_pub + ry_last * proof.eval_w;
        if sub2.expected_evaluation != m_eval * z_eval {
            return false;
        }

        // 5. check the witness opening
        transcript.append_field(b"eval_w", &proof.eval_w);
        proof.ipa.verify(
            &inst.ipa_gens,
            &mut transcript,
            &proof.comm_w,
            &chi_low,
            &proof.eval_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;
    use zkvc_r1cs::LinearCombination;

    fn cubic_cs(x_val: u64) -> ConstraintSystem<Fr> {
        let out_val = x_val * x_val * x_val + x_val + 5;
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(out_val));
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let x2 = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x3 = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x.into(), x.into(), x2.into());
        cs.enforce(x2.into(), x.into(), x3.into());
        cs.enforce(
            LinearCombination::from(x3)
                + LinearCombination::from(x)
                + LinearCombination::constant(Fr::from_u64(5)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
        cs
    }

    #[test]
    fn prove_and_verify() {
        let mut rng = StdRng::seed_from_u64(77);
        let cs = cubic_cs(3);
        assert!(cs.is_satisfied());
        let prover = SpartanProver::preprocess(&cs);
        let verifier = SpartanVerifier::preprocess(&cs);
        let proof = prover.prove(&cs, &mut rng);
        assert!(verifier.verify(cs.instance_assignment(), &proof));
        assert!(proof.size_in_bytes() > 0);
    }

    #[test]
    fn proofs_are_bit_identical_under_any_tune_profile() {
        // The tune subsystem only reschedules the MSM kernels behind the
        // witness commitment and IPA; under fixed prover randomness the
        // proof must not change however extreme the installed profile.
        // Compared via Debug rendering (`SpartanProof` exposes no
        // `PartialEq`) with `comm_w` normalised to affine first: the
        // projective Z coordinate is a representation detail the wire
        // serialisation never sees, and different MSM drivers legally
        // return the same point at different Z.
        let canonical = |p: &SpartanProof| {
            format!(
                "{:?} {:?} {:?} {:?} {:?} {:?}",
                p.comm_w.to_affine(),
                p.sc1,
                p.claims,
                p.sc2,
                p.eval_w,
                p.ipa
            )
        };
        let cs = cubic_cs(3);
        let prover = SpartanProver::preprocess(&cs);
        let mut rng = StdRng::seed_from_u64(80);
        let baseline = canonical(&prover.prove(&cs, &mut rng));

        let mut extreme = zkvc_curve::tune::TuneProfile::static_profile();
        extreme.msm.affine_mask = !0u64;
        extreme.msm.windows = [3u8; 33];
        extreme.fft.par_mask = !0u64;
        let previous = zkvc_curve::tune::activate(&extreme);
        let mut rng = StdRng::seed_from_u64(80);
        let tuned = canonical(&prover.prove(&cs, &mut rng));
        zkvc_curve::tune::restore(previous);

        assert_eq!(tuned, baseline);
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = StdRng::seed_from_u64(78);
        let cs = cubic_cs(3);
        let prover = SpartanProver::preprocess(&cs);
        let verifier = SpartanVerifier::preprocess(&cs);
        let proof = prover.prove(&cs, &mut rng);
        assert!(!verifier.verify(&[Fr::from_u64(36)], &proof));
        assert!(!verifier.verify(&[], &proof));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(79);
        let cs = cubic_cs(4);
        let prover = SpartanProver::preprocess(&cs);
        let verifier = SpartanVerifier::preprocess(&cs);
        let base = prover.prove(&cs, &mut rng);
        assert!(verifier.verify(cs.instance_assignment(), &base));

        let mut p = base.clone();
        p.claims.0 += Fr::one();
        assert!(!verifier.verify(cs.instance_assignment(), &p));

        let mut p = base.clone();
        p.eval_w += Fr::one();
        assert!(!verifier.verify(cs.instance_assignment(), &p));

        let mut p = base.clone();
        p.comm_w += G1Projective::generator();
        assert!(!verifier.verify(cs.instance_assignment(), &p));

        let mut p = base;
        p.sc2.round_polys[0][1] += Fr::one();
        assert!(!verifier.verify(cs.instance_assignment(), &p));
    }

    #[test]
    fn cheating_witness_rejected() {
        // A witness that does not satisfy the R1CS must not verify even if
        // the prover runs honestly on it.
        let mut rng = StdRng::seed_from_u64(80);
        let mut cs = cubic_cs(3);
        // corrupt the witness: x3 wrong
        let mut w = cs.witness_assignment().to_vec();
        w[2] = Fr::from_u64(28);
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
        let prover = SpartanProver::preprocess(&cs);
        let verifier = SpartanVerifier::preprocess(&cs);
        let proof = prover.prove(&cs, &mut rng);
        assert!(!verifier.verify(cs.instance_assignment(), &proof));
    }

    #[test]
    fn larger_circuit_roundtrip() {
        // chain of multiplications: x_{i+1} = x_i * x_i, 20 steps
        let mut rng = StdRng::seed_from_u64(81);
        let mut cs = ConstraintSystem::<Fr>::new();
        let mut val = Fr::from_u64(3);
        let mut cur = cs.alloc_instance(val);
        for _ in 0..20 {
            let next_val = val * val;
            let next = cs.alloc_witness(next_val);
            cs.enforce(cur.into(), cur.into(), next.into());
            cur = next;
            val = next_val;
        }
        assert!(cs.is_satisfied());
        let prover = SpartanProver::preprocess(&cs);
        let verifier = SpartanVerifier::preprocess(&cs);
        let proof = prover.prove(&cs, &mut rng);
        assert!(verifier.verify(cs.instance_assignment(), &proof));
    }
}
