//! Canonical byte serialisation for Spartan proofs, so `zkVC-S` proofs can
//! cross process boundaries (the `zkvc` CLI, the batch-proving service, or
//! any wire protocol).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! SpartanProof := comm_w:point
//!               | sumcheck(sc1) | claims:3*fr | sumcheck(sc2) | eval_w:fr
//!               | ipa_rounds:u32 | L:point*rounds | R:point*rounds | a_final:fr
//! sumcheck     := rounds:u32 | (len:u32 | fr*len)*rounds
//! point        := 65 bytes (uncompressed affine, validated on decode)
//! fr           := 32 bytes (canonical little-endian, validated on decode)
//! ```
//!
//! Decoding validates every group element against the curve equation and
//! every scalar against the field modulus, and rejects trailing bytes, so a
//! tampered encoding either fails to decode or decodes to a proof that the
//! verifier rejects via Fiat-Shamir.

use zkvc_curve::G1Affine;
use zkvc_ff::{Fr, PrimeField};

use crate::ipa::InnerProductProof;
use crate::snark::SpartanProof;
use crate::sumcheck::SumcheckProof;

/// Incremental reader with validation; all methods return `None` on
/// malformed input.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    fn u32(&mut self) -> Option<u32> {
        let b: [u8; 4] = self.take(4)?.try_into().ok()?;
        Some(u32::from_le_bytes(b))
    }

    fn fr(&mut self) -> Option<Fr> {
        let b: [u8; 32] = self.take(32)?.try_into().ok()?;
        Fr::from_bytes_le(&b)
    }

    fn point(&mut self) -> Option<G1Affine> {
        let b: [u8; 65] = self.take(65)?.try_into().ok()?;
        G1Affine::from_bytes(&b)
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Reads a `u32` count and rejects it unless the remaining buffer can
    /// hold `count * min_item_size` bytes — so a malicious length prefix
    /// can never force a large up-front allocation.
    fn bounded_count(&mut self, min_item_size: usize) -> Option<usize> {
        let count = self.u32()? as usize;
        let remaining = self.bytes.len().saturating_sub(self.pos);
        if count > remaining / min_item_size {
            return None;
        }
        Some(count)
    }
}

fn write_fr(out: &mut Vec<u8>, v: &Fr) {
    out.extend_from_slice(&v.to_bytes_le());
}

impl SumcheckProof {
    /// Serialises the round polynomials.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + self
                .round_polys
                .iter()
                .map(|r| 4 + 32 * r.len())
                .sum::<usize>(),
        );
        out.extend_from_slice(&(self.round_polys.len() as u32).to_le_bytes());
        for round in &self.round_polys {
            out.extend_from_slice(&(round.len() as u32).to_le_bytes());
            for v in round {
                write_fr(&mut out, v);
            }
        }
        out
    }

    fn read(r: &mut Reader<'_>) -> Option<Self> {
        // Each round needs at least its 4-byte length prefix; each round
        // element is a 32-byte scalar.
        let rounds = r.bounded_count(4)?;
        let mut round_polys = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let len = r.bounded_count(32)?;
            let mut round = Vec::with_capacity(len);
            for _ in 0..len {
                round.push(r.fr()?);
            }
            round_polys.push(round);
        }
        Some(SumcheckProof { round_polys })
    }

    /// Deserialises a sum-check proof, validating every scalar.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let proof = Self::read(&mut r)?;
        r.finished().then_some(proof)
    }
}

impl InnerProductProof {
    /// Serialises the folding cross-terms and final scalar.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 65 * (self.l_vec.len() + self.r_vec.len()) + 32);
        out.extend_from_slice(&(self.l_vec.len() as u32).to_le_bytes());
        for p in &self.l_vec {
            out.extend_from_slice(&p.to_bytes());
        }
        for p in &self.r_vec {
            out.extend_from_slice(&p.to_bytes());
        }
        write_fr(&mut out, &self.a_final);
        out
    }

    fn read(r: &mut Reader<'_>) -> Option<Self> {
        // Each round carries an L and an R point (2 * 65 bytes).
        let rounds = r.bounded_count(2 * 65)?;
        let mut l_vec = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            l_vec.push(r.point()?);
        }
        let mut r_vec = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            r_vec.push(r.point()?);
        }
        let a_final = r.fr()?;
        Some(InnerProductProof {
            l_vec,
            r_vec,
            a_final,
        })
    }

    /// Deserialises an inner-product proof, validating every point and
    /// scalar.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let proof = Self::read(&mut r)?;
        r.finished().then_some(proof)
    }
}

impl SpartanProof {
    /// Canonical byte serialisation of the whole proof.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.comm_w.to_affine().to_bytes());
        out.extend_from_slice(&self.sc1.to_bytes());
        write_fr(&mut out, &self.claims.0);
        write_fr(&mut out, &self.claims.1);
        write_fr(&mut out, &self.claims.2);
        out.extend_from_slice(&self.sc2.to_bytes());
        write_fr(&mut out, &self.eval_w);
        out.extend_from_slice(&self.ipa.to_bytes());
        out
    }

    /// Deserialises a proof written by [`Self::to_bytes`], validating every
    /// group element and field element and rejecting trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let comm_w = r.point()?.to_projective();
        let sc1 = SumcheckProof::read(&mut r)?;
        let claims = (r.fr()?, r.fr()?, r.fr()?);
        let sc2 = SumcheckProof::read(&mut r)?;
        let eval_w = r.fr()?;
        let ipa = InnerProductProof::read(&mut r)?;
        if !r.finished() {
            return None;
        }
        Some(SpartanProof {
            comm_w,
            sc1,
            claims,
            sc2,
            eval_w,
            ipa,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpartanProver, SpartanVerifier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::Field;
    use zkvc_r1cs::{ConstraintSystem, LinearCombination};

    fn proof_fixture() -> (ConstraintSystem<Fr>, SpartanProof) {
        let x_val = 5u64;
        let out_val = x_val * x_val * x_val + 7;
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(out_val));
        let x = cs.alloc_witness(Fr::from_u64(x_val));
        let x2 = cs.alloc_witness(Fr::from_u64(x_val * x_val));
        let x3 = cs.alloc_witness(Fr::from_u64(x_val * x_val * x_val));
        cs.enforce(x.into(), x.into(), x2.into());
        cs.enforce(x2.into(), x.into(), x3.into());
        cs.enforce(
            LinearCombination::from(x3) + LinearCombination::constant(Fr::from_u64(7)),
            LinearCombination::constant(Fr::one()),
            out.into(),
        );
        let mut rng = StdRng::seed_from_u64(0x5EB1A1);
        let proof = SpartanProver::preprocess(&cs).prove(&cs, &mut rng);
        (cs, proof)
    }

    #[test]
    fn roundtrip_preserves_proof_and_verifies() {
        let (cs, proof) = proof_fixture();
        let bytes = proof.to_bytes();
        let back = SpartanProof::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.comm_w, proof.comm_w);
        assert_eq!(back.sc1, proof.sc1);
        assert_eq!(back.claims, proof.claims);
        assert_eq!(back.sc2, proof.sc2);
        assert_eq!(back.eval_w, proof.eval_w);
        assert_eq!(back.ipa, proof.ipa);
        let verifier = SpartanVerifier::preprocess(&cs);
        assert!(verifier.verify(cs.instance_assignment(), &back));
        // Serialisation is stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncated_and_padded_encodings_rejected() {
        let (_cs, proof) = proof_fixture();
        let bytes = proof.to_bytes();
        assert!(SpartanProof::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(SpartanProof::from_bytes(&[]).is_none());
        let mut padded = bytes;
        padded.push(0);
        assert!(SpartanProof::from_bytes(&padded).is_none());
    }

    #[test]
    fn bit_flipped_proof_bytes_fail_verification() {
        let (cs, proof) = proof_fixture();
        let verifier = SpartanVerifier::preprocess(&cs);
        let bytes = proof.to_bytes();
        // Walk a deterministic sample of byte positions (every 13th, plus
        // both ends): each flip must fail to decode or fail to verify.
        let positions: Vec<usize> = (0..bytes.len())
            .step_by(13)
            .chain([bytes.len() - 1])
            .collect();
        for pos in positions {
            let mut tampered = bytes.clone();
            tampered[pos] ^= 1;
            match SpartanProof::from_bytes(&tampered) {
                None => {} // rejected by point/scalar validation
                Some(p) => assert!(
                    !verifier.verify(cs.instance_assignment(), &p),
                    "flipped byte {pos} still verified"
                ),
            }
        }
    }

    #[test]
    fn huge_length_prefixes_rejected_without_allocation() {
        // rounds = 2^20 in an 8-byte sumcheck encoding.
        let mut bytes = (1u32 << 20).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(SumcheckProof::from_bytes(&bytes).is_none());
        // Same header as an IPA proof (each claimed round needs 130 bytes).
        assert!(InnerProductProof::from_bytes(&bytes).is_none());
        // And embedded mid-proof: a valid point followed by a huge count.
        let (_cs, proof) = proof_fixture();
        let mut embedded = proof.comm_w.to_affine().to_bytes().to_vec();
        embedded.extend_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(SpartanProof::from_bytes(&embedded).is_none());
    }

    #[test]
    fn sumcheck_and_ipa_roundtrip_standalone() {
        let (_cs, proof) = proof_fixture();
        let sc = SumcheckProof::from_bytes(&proof.sc1.to_bytes()).unwrap();
        assert_eq!(sc, proof.sc1);
        let ipa = InnerProductProof::from_bytes(&proof.ipa.to_bytes()).unwrap();
        assert_eq!(ipa, proof.ipa);
        // Mismatched L/R length prefix is caught.
        let mut bytes = proof.ipa.to_bytes();
        bytes[0] = bytes[0].wrapping_add(1);
        assert!(InnerProductProof::from_bytes(&bytes).is_none());
    }
}
