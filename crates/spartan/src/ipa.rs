//! A Bulletproofs-style inner-product argument (non-hiding).
//!
//! Proves knowledge of a vector `a` such that `P = <a, G> + <a, b> * Q` for
//! public generators `G`, `Q` and a public vector `b`, with a proof of
//! `2 log n` group elements. The Spartan-style SNARK uses it to open the
//! multilinear evaluation of the committed witness at the random point
//! produced by the second sum-check.

use zkvc_curve::{msm, G1Affine, G1Projective};
use zkvc_ff::{batch_inverse, Field, Fr};
use zkvc_hash::Transcript;

/// Generators for the inner-product argument.
#[derive(Clone, Debug)]
pub struct IpaGenerators {
    /// Vector bases (`n`, a power of two).
    pub g: Vec<G1Affine>,
    /// The base that carries the inner-product value.
    pub q: G1Affine,
}

impl IpaGenerators {
    /// Derives generators from a label; `n` is rounded up to a power of two.
    pub fn new(n: usize, label: &[u8]) -> Self {
        let n = n.max(1).next_power_of_two();
        let pts: Vec<G1Projective> = (0..n)
            .map(|i| {
                let mut seed = label.to_vec();
                seed.extend_from_slice(b"/ipa-g/");
                seed.extend_from_slice(&(i as u64).to_le_bytes());
                G1Projective::hash_to_curve(&seed)
            })
            .collect();
        let mut qs = label.to_vec();
        qs.extend_from_slice(b"/ipa-q");
        IpaGenerators {
            g: G1Projective::batch_to_affine(&pts),
            q: G1Projective::hash_to_curve(&qs).to_affine(),
        }
    }

    /// The (padded) vector length supported by these generators.
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Whether the generator vector is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }

    /// Commits to the vector `a`: `<a, G>` (no blinding).
    pub fn commit(&self, a: &[Fr]) -> G1Projective {
        assert!(a.len() <= self.g.len(), "vector longer than generators");
        msm(&self.g[..a.len()], a)
    }
}

/// A logarithmic-size inner-product proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InnerProductProof {
    /// Left cross terms, one per round.
    pub l_vec: Vec<G1Affine>,
    /// Right cross terms, one per round.
    pub r_vec: Vec<G1Affine>,
    /// The single remaining vector entry after all folding rounds.
    pub a_final: Fr,
}

impl InnerProductProof {
    /// Serialised size in bytes (65 bytes per point + 32 for the scalar).
    pub fn size_in_bytes(&self) -> usize {
        (self.l_vec.len() + self.r_vec.len()) * 65 + 32
    }

    /// Proves that the committed vector `a` satisfies `<a, b> = c`, where the
    /// verifier knows `commit = <a, G>`, the public vector `b` and `c`.
    ///
    /// # Panics
    /// Panics if `a.len() != b.len()` or the length is not a power of two
    /// matching the generators.
    pub fn prove(
        gens: &IpaGenerators,
        transcript: &mut Transcript,
        a: &[Fr],
        b: &[Fr],
    ) -> InnerProductProof {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        assert!(a.len().is_power_of_two(), "length must be a power of two");
        assert_eq!(a.len(), gens.g.len(), "generator length mismatch");

        let mut a = a.to_vec();
        let mut b = b.to_vec();
        let mut g = gens.g.to_vec();
        let q = gens.q.to_projective();

        let mut l_vec = Vec::new();
        let mut r_vec = Vec::new();

        while a.len() > 1 {
            let half = a.len() / 2;
            let (a_l, a_r) = a.split_at(half);
            let (b_l, b_r) = b.split_at(half);
            let (g_l, g_r) = g.split_at(half);

            let c_l: Fr = a_l.iter().zip(b_r.iter()).map(|(x, y)| *x * *y).sum();
            let c_r: Fr = a_r.iter().zip(b_l.iter()).map(|(x, y)| *x * *y).sum();

            let l = msm(g_r, a_l) + q * c_l;
            let r = msm(g_l, a_r) + q * c_r;
            let l_aff = l.to_affine();
            let r_aff = r.to_affine();
            transcript.append_point(b"ipa L", &l_aff);
            transcript.append_point(b"ipa R", &r_aff);
            l_vec.push(l_aff);
            r_vec.push(r_aff);

            let x = transcript.challenge_field(b"ipa x");
            let x_inv = x.inverse().expect("challenge is non-zero w.o.p.");

            // fold
            let mut a_next = Vec::with_capacity(half);
            let mut b_next = Vec::with_capacity(half);
            let mut g_next = Vec::with_capacity(half);
            for i in 0..half {
                a_next.push(a_l[i] * x + a_r[i] * x_inv);
                b_next.push(b_l[i] * x_inv + b_r[i] * x);
                g_next.push(
                    (g_l[i].to_projective() * x_inv + g_r[i].to_projective() * x).to_affine(),
                );
            }
            a = a_next;
            b = b_next;
            g = g_next;
        }

        InnerProductProof {
            l_vec,
            r_vec,
            a_final: a[0],
        }
    }

    /// Verifies the proof against `commit = <a, G>`, the public vector `b`
    /// and the claimed inner product `c`.
    pub fn verify(
        &self,
        gens: &IpaGenerators,
        transcript: &mut Transcript,
        commit: &G1Projective,
        b: &[Fr],
        c: &Fr,
    ) -> bool {
        let n = gens.g.len();
        if b.len() != n || !n.is_power_of_two() {
            return false;
        }
        let rounds = n.trailing_zeros() as usize;
        if self.l_vec.len() != rounds || self.r_vec.len() != rounds {
            return false;
        }

        // Reconstruct challenges.
        let mut challenges = Vec::with_capacity(rounds);
        for (l, r) in self.l_vec.iter().zip(self.r_vec.iter()) {
            if !l.is_on_curve() || !r.is_on_curve() {
                return false;
            }
            transcript.append_point(b"ipa L", l);
            transcript.append_point(b"ipa R", r);
            challenges.push(transcript.challenge_field(b"ipa x"));
        }
        let mut challenges_inv = challenges.clone();
        batch_inverse(&mut challenges_inv);

        // s_i = prod_j x_j^{+1 or -1} depending on bit j of i (MSB = round 0)
        let mut s = vec![Fr::one(); n];
        for (i, si) in s.iter_mut().enumerate() {
            for (j, (x, x_inv)) in challenges.iter().zip(challenges_inv.iter()).enumerate() {
                // round j splits on bit (rounds-1-j)... with our folding the
                // first round pairs index i and i+half, i.e. bit (rounds-1).
                let bit = (i >> (rounds - 1 - j)) & 1;
                *si *= if bit == 1 { *x } else { *x_inv };
            }
        }

        // b folds exactly like G, so b_final = <b, s>.
        let b_final: Fr = b.iter().zip(s.iter()).map(|(bi, si)| *bi * *si).sum();

        // G_final = <s, G>
        let g_final = msm(&gens.g, &s);

        // P' = commit + c*Q + sum_j (x_j^2 L_j + x_j^{-2} R_j)
        let q = gens.q.to_projective();
        let mut p = *commit + q * *c;
        for ((l, r), (x, x_inv)) in self
            .l_vec
            .iter()
            .zip(self.r_vec.iter())
            .zip(challenges.iter().zip(challenges_inv.iter()))
        {
            p = p + l.to_projective() * (x.square()) + r.to_projective() * (x_inv.square());
        }

        // Check P' == a_final * G_final + (a_final * b_final) * Q
        p == g_final * self.a_final + q * (self.a_final * b_final)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inner(a: &[Fr], b: &[Fr]) -> Fr {
        a.iter().zip(b.iter()).map(|(x, y)| *x * *y).sum()
    }

    #[test]
    fn prove_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(100);
        for log_n in [0usize, 1, 3, 5] {
            let n = 1 << log_n;
            let gens = IpaGenerators::new(n, b"ipa test");
            let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let c = inner(&a, &b);
            let commit = gens.commit(&a);

            let mut tp = Transcript::new(b"ipa");
            let proof = InnerProductProof::prove(&gens, &mut tp, &a, &b);
            let mut tv = Transcript::new(b"ipa");
            assert!(proof.verify(&gens, &mut tv, &commit, &b, &c), "n={n}");
            assert!(proof.size_in_bytes() > 0);
        }
    }

    #[test]
    fn wrong_claim_rejected() {
        let mut rng = StdRng::seed_from_u64(101);
        let n = 8;
        let gens = IpaGenerators::new(n, b"ipa test");
        let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let commit = gens.commit(&a);
        let mut tp = Transcript::new(b"ipa");
        let proof = InnerProductProof::prove(&gens, &mut tp, &a, &b);
        let mut tv = Transcript::new(b"ipa");
        let wrong = inner(&a, &b) + Fr::one();
        assert!(!proof.verify(&gens, &mut tv, &commit, &b, &wrong));
    }

    #[test]
    fn wrong_commitment_rejected() {
        let mut rng = StdRng::seed_from_u64(102);
        let n = 4;
        let gens = IpaGenerators::new(n, b"ipa test");
        let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let mut tp = Transcript::new(b"ipa");
        let proof = InnerProductProof::prove(&gens, &mut tp, &a, &b);
        let bad_commit = gens.commit(&a) + G1Projective::generator();
        let mut tv = Transcript::new(b"ipa");
        assert!(!proof.verify(&gens, &mut tv, &bad_commit, &b, &inner(&a, &b)));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(103);
        let n = 8;
        let gens = IpaGenerators::new(n, b"ipa test");
        let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let commit = gens.commit(&a);
        let mut tp = Transcript::new(b"ipa");
        let mut proof = InnerProductProof::prove(&gens, &mut tp, &a, &b);
        proof.a_final += Fr::one();
        let mut tv = Transcript::new(b"ipa");
        assert!(!proof.verify(&gens, &mut tv, &commit, &b, &inner(&a, &b)));
    }
}
