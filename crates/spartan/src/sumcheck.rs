//! The sum-check protocol over multilinear polynomials.
//!
//! Two specialisations are provided, matching the two phases of the
//! Spartan-style SNARK (and reused by `zkvc-interactive`'s matmul protocol):
//!
//! * degree-2: `sum_x P(x) * Q(x)`
//! * degree-3: `sum_x E(x) * (A(x) * B(x) - C(x))`
//!
//! Each round the prover sends the round polynomial as its evaluations at
//! `0, 1, ..., degree`; the verifier checks `g(0) + g(1) = claim`, samples a
//! challenge through the Fiat-Shamir transcript and continues with
//! `claim' = g(r)`.

use zkvc_ff::{Field, Fr, MultilinearPolynomial};
use zkvc_hash::Transcript;

/// The prover messages of one sum-check execution: one vector of round
/// polynomial evaluations (at `0..=degree`) per variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumcheckProof {
    /// `round_polys[j][k]` is the j-th round polynomial evaluated at `k`.
    pub round_polys: Vec<Vec<Fr>>,
}

impl SumcheckProof {
    /// Number of field elements in the proof (for proof-size accounting).
    pub fn num_field_elements(&self) -> usize {
        self.round_polys.iter().map(Vec::len).sum()
    }
}

/// Result of verifying a sum-check proof: the challenges used and the
/// claimed evaluation of the combined polynomial at that random point.
#[derive(Clone, Debug)]
pub struct SumcheckSubclaim {
    /// The random point built from the per-round challenges.
    pub point: Vec<Fr>,
    /// The value the combined polynomial must take at `point`.
    pub expected_evaluation: Fr,
}

/// Evaluates a univariate polynomial given by its evaluations at
/// `0, 1, ..., d` at an arbitrary point `x` (Lagrange interpolation).
fn interpolate_uni(evals: &[Fr], x: &Fr) -> Fr {
    let d = evals.len();
    let mut result = Fr::zero();
    for (i, yi) in evals.iter().enumerate() {
        let mut num = Fr::one();
        let mut den = Fr::one();
        let xi = Fr::from_u64(i as u64);
        for j in 0..d {
            if i == j {
                continue;
            }
            let xj = Fr::from_u64(j as u64);
            num *= *x - xj;
            den *= xi - xj;
        }
        result += *yi * num * den.inverse().expect("distinct interpolation nodes");
    }
    result
}

use zkvc_ff::PrimeField;

/// Below this many index pairs a parallel round evaluation is all spawn
/// overhead.
const PAR_ROUND_MIN: usize = 1 << 12;

fn round_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Splits `0..half` across `threads` workers, runs `fold` on each range and
/// sums the per-range partial vectors in range order. Field addition is
/// exact (associative and commutative), so the result — and therefore the
/// Fiat-Shamir transcript built from it — is bit-identical to a serial
/// fold regardless of the thread count.
fn parallel_fold_sum<const K: usize, F>(half: usize, threads: usize, fold: F) -> [Fr; K]
where
    F: Fn(core::ops::Range<usize>) -> [Fr; K] + Send + Sync,
{
    if half < PAR_ROUND_MIN || threads <= 1 {
        return fold(0..half);
    }
    let chunk = half.div_ceil(threads);
    let starts: Vec<usize> = (0..half).step_by(chunk).collect();
    let mut partials = vec![[Fr::zero(); K]; starts.len()];
    crossbeam::thread::scope(|s| {
        for (slot, &start) in partials.iter_mut().zip(starts.iter()) {
            let fold = &fold;
            s.spawn(move |_| *slot = fold(start..(start + chunk).min(half)));
        }
    })
    .expect("sumcheck fold worker panicked");
    let mut total = [Fr::zero(); K];
    for part in &partials {
        for (t, v) in total.iter_mut().zip(part.iter()) {
            *t += *v;
        }
    }
    total
}

/// One round of the degree-2 sum-check: evaluations of the round polynomial
/// at `t = 0, 1, 2`, accumulated chunk-parallel for large tables.
fn quadratic_round_evals(
    p: &MultilinearPolynomial<Fr>,
    q: &MultilinearPolynomial<Fr>,
    threads: usize,
) -> [Fr; 3] {
    let half = p.len() / 2;
    let pe = p.evaluations();
    let qe = q.evaluations();
    parallel_fold_sum(half, threads, |range| {
        let (mut e0, mut e1, mut e2) = (Fr::zero(), Fr::zero(), Fr::zero());
        for i in range {
            let p0 = pe[2 * i];
            let p1 = pe[2 * i + 1];
            let q0 = qe[2 * i];
            let q1 = qe[2 * i + 1];
            e0 += p0 * q0;
            e1 += p1 * q1;
            // evaluation at t=2: p(2) = 2*p1 - p0 (linear extrapolation)
            let p2 = p1.double() - p0;
            let q2 = q1.double() - q0;
            e2 += p2 * q2;
        }
        [e0, e1, e2]
    })
}

/// One round of the degree-3 sum-check: evaluations at `t = 0, 1, 2, 3`.
fn cubic_round_evals(
    e: &MultilinearPolynomial<Fr>,
    a: &MultilinearPolynomial<Fr>,
    b: &MultilinearPolynomial<Fr>,
    c: &MultilinearPolynomial<Fr>,
    threads: usize,
) -> [Fr; 4] {
    let half = e.len() / 2;
    let (ee, ae, be, ce) = (
        e.evaluations(),
        a.evaluations(),
        b.evaluations(),
        c.evaluations(),
    );
    parallel_fold_sum(half, threads, |range| {
        let mut evals = [Fr::zero(); 4];
        for i in range {
            let (e0, e1) = (ee[2 * i], ee[2 * i + 1]);
            let (a0, a1) = (ae[2 * i], ae[2 * i + 1]);
            let (b0, b1) = (be[2 * i], be[2 * i + 1]);
            let (c0, c1) = (ce[2 * i], ce[2 * i + 1]);
            // linear in t: v(t) = v0 + t*(v1 - v0)
            let de = e1 - e0;
            let da = a1 - a0;
            let db = b1 - b0;
            let dc = c1 - c0;
            let mut et = e0;
            let mut at = a0;
            let mut bt = b0;
            let mut ct = c0;
            evals[0] += et * (at * bt - ct);
            for item in evals.iter_mut().skip(1) {
                et += de;
                at += da;
                bt += db;
                ct += dc;
                *item += et * (at * bt - ct);
            }
        }
        evals
    })
}

/// Proves `claim = sum_{x in {0,1}^v} P(x) * Q(x)`.
///
/// Returns the proof, the challenge point and the final evaluations
/// `(P(r), Q(r))` that the caller must justify to the verifier.
pub fn prove_quadratic(
    claim: &Fr,
    p: &MultilinearPolynomial<Fr>,
    q: &MultilinearPolynomial<Fr>,
    transcript: &mut Transcript,
) -> (SumcheckProof, Vec<Fr>, (Fr, Fr)) {
    prove_quadratic_with_threads(claim, p, q, transcript, round_threads())
}

/// [`prove_quadratic`] with an explicit worker count (`1` forces the serial
/// reference path; the tests assert transcript equality across counts).
fn prove_quadratic_with_threads(
    claim: &Fr,
    p: &MultilinearPolynomial<Fr>,
    q: &MultilinearPolynomial<Fr>,
    transcript: &mut Transcript,
    threads: usize,
) -> (SumcheckProof, Vec<Fr>, (Fr, Fr)) {
    assert_eq!(p.num_vars(), q.num_vars(), "operand arity mismatch");
    let mut p = p.clone();
    let mut q = q.clone();
    let num_vars = p.num_vars();
    let mut round_polys = Vec::with_capacity(num_vars);
    let mut point = Vec::with_capacity(num_vars);
    let mut claim = *claim;

    for _ in 0..num_vars {
        let evals = quadratic_round_evals(&p, &q, threads).to_vec();
        transcript.append_fields(b"sumcheck round", &evals);
        let r = transcript.challenge_field(b"sumcheck challenge");
        claim = interpolate_uni(&evals, &r);
        round_polys.push(evals);
        point.push(r);
        p.fix_first_variable(r);
        q.fix_first_variable(r);
    }
    let final_evals = (p.evaluations()[0], q.evaluations()[0]);
    debug_assert_eq!(final_evals.0 * final_evals.1, claim);
    (SumcheckProof { round_polys }, point, final_evals)
}

/// Proves `claim = sum_{x in {0,1}^v} E(x) * (A(x) * B(x) - C(x))`.
///
/// Returns the proof, the challenge point and the final evaluations
/// `(E(r), A(r), B(r), C(r))`.
pub fn prove_cubic(
    claim: &Fr,
    e: &MultilinearPolynomial<Fr>,
    a: &MultilinearPolynomial<Fr>,
    b: &MultilinearPolynomial<Fr>,
    c: &MultilinearPolynomial<Fr>,
    transcript: &mut Transcript,
) -> (SumcheckProof, Vec<Fr>, (Fr, Fr, Fr, Fr)) {
    prove_cubic_with_threads(claim, e, a, b, c, transcript, round_threads())
}

/// [`prove_cubic`] with an explicit worker count (`1` forces the serial
/// reference path; the tests assert transcript equality across counts).
#[allow(clippy::too_many_arguments)]
fn prove_cubic_with_threads(
    claim: &Fr,
    e: &MultilinearPolynomial<Fr>,
    a: &MultilinearPolynomial<Fr>,
    b: &MultilinearPolynomial<Fr>,
    c: &MultilinearPolynomial<Fr>,
    transcript: &mut Transcript,
    threads: usize,
) -> (SumcheckProof, Vec<Fr>, (Fr, Fr, Fr, Fr)) {
    let num_vars = e.num_vars();
    assert!(
        a.num_vars() == num_vars && b.num_vars() == num_vars && c.num_vars() == num_vars,
        "operand arity mismatch"
    );
    let mut e = e.clone();
    let mut a = a.clone();
    let mut b = b.clone();
    let mut c = c.clone();
    let mut round_polys = Vec::with_capacity(num_vars);
    let mut point = Vec::with_capacity(num_vars);
    let mut claim = *claim;

    for _ in 0..num_vars {
        let evals = cubic_round_evals(&e, &a, &b, &c, threads).to_vec();
        transcript.append_fields(b"sumcheck round", &evals);
        let r = transcript.challenge_field(b"sumcheck challenge");
        claim = interpolate_uni(&evals, &r);
        round_polys.push(evals);
        point.push(r);
        e.fix_first_variable(r);
        a.fix_first_variable(r);
        b.fix_first_variable(r);
        c.fix_first_variable(r);
    }
    let final_evals = (
        e.evaluations()[0],
        a.evaluations()[0],
        b.evaluations()[0],
        c.evaluations()[0],
    );
    debug_assert_eq!(
        final_evals.0 * (final_evals.1 * final_evals.2 - final_evals.3),
        claim
    );
    (SumcheckProof { round_polys }, point, final_evals)
}

/// Verifies a sum-check proof of the given degree against an initial claim.
///
/// Returns the sub-claim (random point + expected evaluation of the combined
/// polynomial there); the caller is responsible for checking that
/// evaluation.
pub fn verify(
    claim: &Fr,
    num_vars: usize,
    degree: usize,
    proof: &SumcheckProof,
    transcript: &mut Transcript,
) -> Option<SumcheckSubclaim> {
    if proof.round_polys.len() != num_vars {
        return None;
    }
    let mut claim = *claim;
    let mut point = Vec::with_capacity(num_vars);
    for evals in &proof.round_polys {
        if evals.len() != degree + 1 {
            return None;
        }
        // consistency: g(0) + g(1) == claim
        if evals[0] + evals[1] != claim {
            return None;
        }
        transcript.append_fields(b"sumcheck round", evals);
        let r = transcript.challenge_field(b"sumcheck challenge");
        claim = interpolate_uni(evals, &r);
        point.push(r);
    }
    Some(SumcheckSubclaim {
        point,
        expected_evaluation: claim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::poly::eq_evals;

    fn random_mle(n: usize, rng: &mut StdRng) -> MultilinearPolynomial<Fr> {
        MultilinearPolynomial::from_evaluations((0..n).map(|_| Fr::random(rng)).collect())
    }

    #[test]
    fn quadratic_sumcheck_roundtrip() {
        let mut rng = StdRng::seed_from_u64(21);
        for log_n in [1usize, 3, 5] {
            let n = 1 << log_n;
            let p = random_mle(n, &mut rng);
            let q = random_mle(n, &mut rng);
            let claim: Fr = (0..n)
                .map(|i| p.evaluations()[i] * q.evaluations()[i])
                .sum();

            let mut tp = Transcript::new(b"test");
            let (proof, point, (pv, qv)) = prove_quadratic(&claim, &p, &q, &mut tp);

            let mut tv = Transcript::new(b"test");
            let sub = verify(&claim, log_n, 2, &proof, &mut tv).expect("should verify");
            assert_eq!(sub.point, point);
            assert_eq!(sub.expected_evaluation, pv * qv);
            assert_eq!(p.evaluate(&point), pv);
            assert_eq!(q.evaluate(&point), qv);
        }
    }

    #[test]
    fn cubic_sumcheck_roundtrip() {
        let mut rng = StdRng::seed_from_u64(22);
        let log_n = 4usize;
        let n = 1 << log_n;
        let tau: Vec<Fr> = (0..log_n).map(|_| Fr::random(&mut rng)).collect();
        let e = MultilinearPolynomial::from_evaluations(eq_evals(&tau));
        let a = random_mle(n, &mut rng);
        let b = random_mle(n, &mut rng);
        // make A*B = C pointwise so the claim is zero (like a satisfied R1CS)
        let c = MultilinearPolynomial::from_evaluations(
            (0..n)
                .map(|i| a.evaluations()[i] * b.evaluations()[i])
                .collect(),
        );
        let claim = Fr::zero();
        let mut tp = Transcript::new(b"cubic");
        let (proof, point, (ev, av, bv, cv)) = prove_cubic(&claim, &e, &a, &b, &c, &mut tp);

        let mut tv = Transcript::new(b"cubic");
        let sub = verify(&claim, log_n, 3, &proof, &mut tv).expect("should verify");
        assert_eq!(sub.point, point);
        assert_eq!(sub.expected_evaluation, ev * (av * bv - cv));
        assert_eq!(e.evaluate(&point), ev);
        assert_eq!(a.evaluate(&point), av);
    }

    #[test]
    fn tampered_round_poly_rejected() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 8;
        let p = random_mle(n, &mut rng);
        let q = random_mle(n, &mut rng);
        let claim: Fr = (0..n)
            .map(|i| p.evaluations()[i] * q.evaluations()[i])
            .sum();
        let mut tp = Transcript::new(b"t");
        let (mut proof, _, _) = prove_quadratic(&claim, &p, &q, &mut tp);
        proof.round_polys[1][0] += Fr::one();
        let mut tv = Transcript::new(b"t");
        assert!(verify(&claim, 3, 2, &proof, &mut tv).is_none());
    }

    #[test]
    fn wrong_claim_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let n = 8;
        let p = random_mle(n, &mut rng);
        let q = random_mle(n, &mut rng);
        let claim: Fr = (0..n)
            .map(|i| p.evaluations()[i] * q.evaluations()[i])
            .sum();
        let mut tp = Transcript::new(b"t");
        let (proof, _, _) = prove_quadratic(&claim, &p, &q, &mut tp);
        let mut tv = Transcript::new(b"t");
        assert!(verify(&(claim + Fr::one()), 3, 2, &proof, &mut tv).is_none());
    }

    #[test]
    fn parallel_sumcheck_transcript_matches_serial_byte_for_byte() {
        // Table large enough that the chunked fold actually engages
        // (half == PAR_ROUND_MIN); proofs, challenge points, final claims
        // and the post-protocol transcript state must all be identical to
        // the single-threaded reference.
        let mut rng = StdRng::seed_from_u64(25);
        let n = 2 * PAR_ROUND_MIN;
        let log_n = n.trailing_zeros() as usize;
        let p = random_mle(n, &mut rng);
        let q = random_mle(n, &mut rng);
        let claim: Fr = (0..n)
            .map(|i| p.evaluations()[i] * q.evaluations()[i])
            .sum();

        let mut t_serial = Transcript::new(b"par");
        let serial = prove_quadratic_with_threads(&claim, &p, &q, &mut t_serial, 1);
        let serial_tail = t_serial.challenge_field(b"tail");
        for threads in [2usize, 3, 8] {
            let mut t_par = Transcript::new(b"par");
            let par = prove_quadratic_with_threads(&claim, &p, &q, &mut t_par, threads);
            assert_eq!(par.0, serial.0, "round polys, threads={threads}");
            assert_eq!(par.1, serial.1, "challenge point");
            assert_eq!(par.2, serial.2, "final evaluations");
            assert_eq!(
                t_par.challenge_field(b"tail"),
                serial_tail,
                "transcript state diverged (threads={threads})"
            );
        }
        let mut tv = Transcript::new(b"par");
        assert!(verify(&claim, log_n, 2, &serial.0, &mut tv).is_some());
    }

    #[test]
    fn parallel_cubic_sumcheck_matches_serial() {
        let mut rng = StdRng::seed_from_u64(26);
        let n = 2 * PAR_ROUND_MIN;
        let e = random_mle(n, &mut rng);
        let a = random_mle(n, &mut rng);
        let b = random_mle(n, &mut rng);
        let c = random_mle(n, &mut rng);
        let claim: Fr = (0..n)
            .map(|i| {
                e.evaluations()[i] * (a.evaluations()[i] * b.evaluations()[i] - c.evaluations()[i])
            })
            .sum();
        let mut t_serial = Transcript::new(b"cpar");
        let serial = prove_cubic_with_threads(&claim, &e, &a, &b, &c, &mut t_serial, 1);
        let mut t_par = Transcript::new(b"cpar");
        let par = prove_cubic_with_threads(&claim, &e, &a, &b, &c, &mut t_par, 4);
        assert_eq!(par.0, serial.0);
        assert_eq!(par.1, serial.1);
        assert_eq!(par.2, serial.2);
        assert_eq!(
            t_par.challenge_field(b"tail"),
            t_serial.challenge_field(b"tail")
        );
    }

    #[test]
    fn interpolation_helper() {
        // g(t) = 2 + 3t + t^2 from evaluations at 0,1,2
        let evals: Vec<Fr> = vec![Fr::from_u64(2), Fr::from_u64(6), Fr::from_u64(12)];
        assert_eq!(interpolate_uni(&evals, &Fr::from_u64(3)), Fr::from_u64(20));
        assert_eq!(interpolate_uni(&evals, &Fr::from_u64(0)), Fr::from_u64(2));
    }
}
