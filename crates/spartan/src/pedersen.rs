//! Pedersen vector commitments over G1.
//!
//! Generators are derived transparently (hash-to-curve from a domain
//! label), so no trusted setup is required — this is what lets the paper
//! list "No Trusted Setup" for the Spartan backend in Table I.

use rand::Rng;
use zkvc_curve::{msm, G1Affine, G1Projective};
use zkvc_ff::{Field, Fr};

/// A set of Pedersen generators: `n` vector bases plus one blinding base.
#[derive(Clone, Debug)]
pub struct PedersenGenerators {
    /// Bases for the committed vector entries.
    pub bases: Vec<G1Affine>,
    /// Base for the blinding factor.
    pub blinding: G1Affine,
}

impl PedersenGenerators {
    /// Derives `n` generators from a domain-separation label.
    pub fn new(n: usize, label: &[u8]) -> Self {
        let points: Vec<G1Projective> = (0..n)
            .map(|i| {
                let mut seed = label.to_vec();
                seed.extend_from_slice(b"/basis/");
                seed.extend_from_slice(&(i as u64).to_le_bytes());
                G1Projective::hash_to_curve(&seed)
            })
            .collect();
        let mut blind_seed = label.to_vec();
        blind_seed.extend_from_slice(b"/blinding");
        PedersenGenerators {
            bases: G1Projective::batch_to_affine(&points),
            blinding: G1Projective::hash_to_curve(&blind_seed).to_affine(),
        }
    }

    /// Number of vector bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether there are no vector bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Commits to a vector with an explicit blinding factor:
    /// `sum_i v_i * G_i + blind * H`.
    ///
    /// # Panics
    /// Panics if the vector is longer than the generator set.
    pub fn commit(&self, values: &[Fr], blind: &Fr) -> G1Projective {
        assert!(
            values.len() <= self.bases.len(),
            "vector longer than the generator set"
        );
        msm(&self.bases[..values.len()], values) + self.blinding.to_projective() * *blind
    }

    /// Commits with a random blinding factor, returning it alongside the
    /// commitment.
    pub fn commit_random<R: Rng + ?Sized>(&self, values: &[Fr], rng: &mut R) -> (G1Projective, Fr) {
        let blind = Fr::random(rng);
        (self.commit(values, &blind), blind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;

    #[test]
    fn commitments_are_binding_on_values_and_blinds() {
        let gens = PedersenGenerators::new(8, b"test");
        let v1: Vec<Fr> = (1..=8).map(Fr::from_u64).collect();
        let v2: Vec<Fr> = (2..=9).map(Fr::from_u64).collect();
        let c1 = gens.commit(&v1, &Fr::from_u64(5));
        let c2 = gens.commit(&v2, &Fr::from_u64(5));
        let c3 = gens.commit(&v1, &Fr::from_u64(6));
        assert_ne!(c1, c2);
        assert_ne!(c1, c3);
        // deterministic
        assert_eq!(c1, gens.commit(&v1, &Fr::from_u64(5)));
    }

    #[test]
    fn commitments_are_homomorphic() {
        let gens = PedersenGenerators::new(4, b"hom");
        let a: Vec<Fr> = (1..=4).map(Fr::from_u64).collect();
        let b: Vec<Fr> = (5..=8).map(Fr::from_u64).collect();
        let sum: Vec<Fr> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect();
        let ca = gens.commit(&a, &Fr::from_u64(1));
        let cb = gens.commit(&b, &Fr::from_u64(2));
        let csum = gens.commit(&sum, &Fr::from_u64(3));
        assert_eq!(ca + cb, csum);
    }

    #[test]
    fn distinct_labels_give_distinct_generators() {
        let g1 = PedersenGenerators::new(3, b"a");
        let g2 = PedersenGenerators::new(3, b"b");
        assert_ne!(g1.bases[0], g2.bases[0]);
        assert_eq!(g1.len(), 3);
        assert!(!g1.is_empty());
    }

    #[test]
    fn short_vectors_allowed() {
        let mut rng = StdRng::seed_from_u64(3);
        let gens = PedersenGenerators::new(8, b"short");
        let v: Vec<Fr> = (1..=3).map(Fr::from_u64).collect();
        let (c, blind) = gens.commit_random(&v, &mut rng);
        assert_eq!(c, gens.commit(&v, &blind));
    }
}
