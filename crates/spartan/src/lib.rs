//! # zkvc-spartan
//!
//! A Spartan-style transparent zk-SNARK for R1CS (Setty, CRYPTO 2020),
//! used as the `zkVC-S` backend of the paper. No trusted setup: the proof
//! consists of
//!
//! 1. a Pedersen vector commitment to the witness,
//! 2. a degree-3 sum-check reducing `Az ∘ Bz - Cz = 0` to a random point,
//! 3. a degree-2 sum-check reducing the three matrix-vector claims to one
//!    evaluation of the assignment MLE, and
//! 4. a Bulletproofs-style inner-product argument opening that evaluation
//!    against the witness commitment.
//!
//! Deviation from the original Spartan (documented in DESIGN.md, S2): the
//! verifier evaluates the multilinear extensions of the public R1CS matrices
//! directly (`O(nnz)` field work) instead of via SPARK sparse-polynomial
//! commitments, so verification is linear in the matrix density rather than
//! poly-logarithmic. Prover cost — the quantity the paper's experiments
//! measure — has the same profile as Spartan.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_spartan::{SpartanProver, SpartanVerifier};
//! use zkvc_r1cs::ConstraintSystem;
//! use zkvc_ff::{Fr, PrimeField};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let out = cs.alloc_instance(Fr::from_u64(36));
//! let x = cs.alloc_witness(Fr::from_u64(6));
//! cs.enforce(x.into(), x.into(), out.into());
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let prover = SpartanProver::preprocess(&cs);
//! let proof = prover.prove(&cs, &mut rng);
//! let verifier = SpartanVerifier::preprocess(&cs);
//! assert!(verifier.verify(cs.instance_assignment(), &proof));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod ipa;
mod pedersen;
mod serial;
mod snark;
pub mod sumcheck;

pub use ipa::{InnerProductProof, IpaGenerators};
pub use pedersen::PedersenGenerators;
pub use snark::{SpartanProof, SpartanProver, SpartanVerifier};
