//! # zkvc-curve
//!
//! The elliptic-curve layer of the zkVC stack: the supersingular curve
//! `E: y^2 = x^3 + x` over the 252-bit base field `Fq`, its prime-order
//! subgroup `G1` (order `r`, the scalar field), the Type-1 (symmetric)
//! reduced Tate pairing into `Fq2`, and Pippenger multi-scalar
//! multiplication.
//!
//! This substitutes for libsnark's ALT_BN128 backend used by the paper (see
//! DESIGN.md, substitution S1): the cost profile of Groth16 — MSMs over the
//! group plus a constant number of pairings — is preserved, while the whole
//! tower stays at `Fq2` instead of `Fq12`.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_curve::{pairing, G1Affine, G1Projective};
//! use zkvc_ff::{Fr, PrimeField, Field};
//!
//! let g = G1Projective::generator();
//! let a = Fr::from_u64(6);
//! let b = Fr::from_u64(7);
//! // e(aG, bG) == e(G, G)^(ab) == e(abG, G)
//! let lhs = pairing(&(g * a).to_affine(), &(g * b).to_affine());
//! let rhs = pairing(&(g * (a * b)).to_affine(), &G1Affine::generator());
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod g1;
mod group;
mod msm;
mod pairing;
pub mod tune;

pub use g1::{G1Affine, G1Projective};
pub use group::{AffinePoint, CurveGroup};
pub use msm::{msm, msm_serial, msm_window_parallel};
pub use pairing::{pairing, pairing_miller_loop, Gt};
