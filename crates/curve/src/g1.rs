//! The prime-order group `G1` on `E: y^2 = x^3 + x` over `Fq`.
//!
//! Affine and Jacobian-projective representations with complete handling of
//! the point at infinity, scalar multiplication by `Fr` elements, and
//! cofactor clearing / subgroup membership checks.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use rand::Rng;
use zkvc_ff::fields::params;
use zkvc_ff::{Field, Fq, Fr, PrimeField};

use crate::group::{AffinePoint, CurveGroup};

/// A point on `E(Fq)` in affine coordinates (or the point at infinity).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct G1Affine {
    /// x-coordinate (meaningless when `infinity` is set).
    pub x: Fq,
    /// y-coordinate (meaningless when `infinity` is set).
    pub y: Fq,
    /// Marker for the point at infinity (the group identity).
    pub infinity: bool,
}

/// A point on `E(Fq)` in Jacobian projective coordinates `(X : Y : Z)` with
/// `x = X/Z^2`, `y = Y/Z^3`; the identity is encoded by `Z = 0`.
#[derive(Copy, Clone, Debug)]
pub struct G1Projective {
    /// Jacobian X.
    pub x: Fq,
    /// Jacobian Y.
    pub y: Fq,
    /// Jacobian Z (zero encodes the identity).
    pub z: Fq,
}

impl G1Affine {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        G1Affine {
            x: Fq::zero(),
            y: Fq::one(),
            infinity: true,
        }
    }

    /// The fixed generator of the order-`r` subgroup.
    pub fn generator() -> Self {
        G1Affine {
            x: Fq::from_canonical_reduced(params::G1_GENERATOR_X),
            y: Fq::from_canonical_reduced(params::G1_GENERATOR_Y),
            infinity: false,
        }
    }

    /// Returns `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks the affine curve equation `y^2 = x^3 + x`.
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + self.x
    }

    /// Checks membership in the order-`r` subgroup (identity included).
    pub fn is_in_subgroup(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.to_projective().mul_by_fr_order().is_identity()
    }

    /// Converts to projective coordinates.
    pub fn to_projective(&self) -> G1Projective {
        if self.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: self.x,
                y: self.y,
                z: Fq::one(),
            }
        }
    }

    /// Negates the point.
    pub fn neg_point(&self) -> Self {
        G1Affine {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Serialises the point as 65 bytes (`x || y || infinity-flag`).
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(&self.x.to_bytes_le());
        out[32..64].copy_from_slice(&self.y.to_bytes_le());
        out[64] = self.infinity as u8;
        out
    }

    /// Deserialises a point written by [`Self::to_bytes`], validating the
    /// curve equation.
    pub fn from_bytes(bytes: &[u8; 65]) -> Option<Self> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..64]);
        let p = G1Affine {
            x: Fq::from_bytes_le(&xb)?,
            y: Fq::from_bytes_le(&yb)?,
            infinity: bytes[64] == 1,
        };
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }
}

impl AffinePoint for G1Affine {
    type Base = Fq;
    type Scalar = Fr;
    type Projective = G1Projective;

    fn coeff_a() -> Fq {
        // E: y^2 = x^3 + x
        Fq::one()
    }

    fn identity() -> Self {
        G1Affine::identity()
    }

    fn is_identity(&self) -> bool {
        self.infinity
    }

    fn xy(&self) -> Option<(Fq, Fq)> {
        if self.infinity {
            None
        } else {
            Some((self.x, self.y))
        }
    }

    fn from_xy_unchecked(x: Fq, y: Fq) -> Self {
        G1Affine {
            x,
            y,
            infinity: false,
        }
    }

    fn neg_point(&self) -> Self {
        G1Affine::neg_point(self)
    }

    fn to_projective(&self) -> G1Projective {
        G1Affine::to_projective(self)
    }
}

impl CurveGroup for G1Projective {
    type Base = Fq;
    type Scalar = Fr;
    type Affine = G1Affine;

    fn identity() -> Self {
        G1Projective::identity()
    }

    fn is_identity(&self) -> bool {
        G1Projective::is_identity(self)
    }

    fn double(&self) -> Self {
        G1Projective::double(self)
    }

    fn add(&self, other: &Self) -> Self {
        G1Projective::add(self, other)
    }

    fn add_affine(&self, other: &G1Affine) -> Self {
        G1Projective::add_affine(self, other)
    }

    fn neg_point(&self) -> Self {
        G1Projective::neg_point(self)
    }

    fn to_affine(&self) -> G1Affine {
        G1Projective::to_affine(self)
    }

    fn mul_scalar(&self, scalar: &Fr) -> Self {
        G1Projective::mul_scalar(self, scalar)
    }
}

impl Default for G1Affine {
    fn default() -> Self {
        Self::identity()
    }
}

impl fmt::Display for G1Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "G1(infinity)")
        } else {
            write!(f, "G1({}, {})", self.x, self.y)
        }
    }
}

impl Neg for G1Affine {
    type Output = G1Affine;
    fn neg(self) -> G1Affine {
        self.neg_point()
    }
}

impl G1Projective {
    /// The group identity.
    pub fn identity() -> Self {
        G1Projective {
            x: Fq::one(),
            y: Fq::one(),
            z: Fq::zero(),
        }
    }

    /// The fixed generator of the order-`r` subgroup.
    pub fn generator() -> Self {
        G1Affine::generator().to_projective()
    }

    /// Returns `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let z_inv = self.z.inverse().expect("non-identity point has z != 0");
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2 * z_inv;
        G1Affine {
            x: self.x * z_inv2,
            y: self.y * z_inv3,
            infinity: false,
        }
    }

    /// Batch conversion to affine with a single inversion (Montgomery trick).
    pub fn batch_to_affine(points: &[G1Projective]) -> Vec<G1Affine> {
        let mut zs: Vec<Fq> = points.iter().map(|p| p.z).collect();
        zkvc_ff::batch_inverse(&mut zs);
        points
            .iter()
            .zip(zs.iter())
            .map(|(p, zi)| {
                if p.is_identity() {
                    G1Affine::identity()
                } else {
                    let zi2 = zi.square();
                    G1Affine {
                        x: p.x * zi2,
                        y: p.y * zi2 * *zi,
                        infinity: false,
                    }
                }
            })
            .collect()
    }

    /// Point doubling (Jacobian, curve coefficient `a = 1`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        // Standard dbl-2007-bl-like formulas for general a:
        // M = 3*X^2 + a*Z^4, with a = 1.
        let xx = self.x.square();
        let yy = self.y.square();
        let yyyy = yy.square();
        let zz = self.z.square();
        let s = ((self.x + yy).square() - xx - yyyy).double();
        let m = xx.double() + xx + zz.square(); // 3*XX + a*ZZ^2, a = 1
        let t = m.square() - s.double();
        let x3 = t;
        let y3 = m * (s - t) - yyyy.double().double().double(); // 8*YYYY
        let z3 = (self.y + self.z).square() - yy - zz;
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point.
    pub fn add_affine(&self, other: &G1Affine) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        // madd-2007-bl
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if u2 == self.x && s2 == self.y {
            return self.double();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let rr = (s2 - self.y).double();
        if h.is_zero() && rr.is_zero() {
            return self.double();
        }
        if h.is_zero() {
            // x equal, y opposite -> identity
            return G1Projective::identity();
        }
        let v = self.x * i;
        let x3 = rr.square() - j - v.double();
        let y3 = rr * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Full projective addition.
    pub fn add(&self, other: &G1Projective) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        // add-2007-bl
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return G1Projective::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let rr = (s2 - s1).double();
        let v = u1 * i;
        let x3 = rr.square() - j - v.double();
        let y3 = rr * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by an `Fr` element (double-and-add, MSB first).
    pub fn mul_scalar(&self, scalar: &Fr) -> Self {
        let bits = scalar.num_bits();
        if bits == 0 {
            return G1Projective::identity();
        }
        let mut acc = G1Projective::identity();
        for i in (0..bits).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Multiplies by the subgroup order `r` (used in subgroup checks).
    pub fn mul_by_fr_order(&self) -> Self {
        let r = <Fr as PrimeField>::MODULUS;
        let mut acc = G1Projective::identity();
        let nbits = zkvc_ff::arith::num_bits_4(&r);
        for i in (0..nbits).rev() {
            acc = acc.double();
            if zkvc_ff::arith::bit_4(&r, i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Negates the point.
    pub fn neg_point(&self) -> Self {
        G1Projective {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Samples a uniformly random subgroup element (random scalar times the
    /// generator).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::generator().mul_scalar(&Fr::random(rng))
    }

    /// Hashes arbitrary bytes onto the curve subgroup (try-and-increment on
    /// the x-coordinate followed by cofactor clearing). Not constant time;
    /// used only for deriving public Pedersen bases.
    pub fn hash_to_curve(seed: &[u8]) -> Self {
        // A tiny deterministic PRG from the seed via repeated squaring of a
        // field element; adequate for public parameter derivation.
        let mut acc = Fq::from_u64(0x5eed_0000_0001);
        for (i, b) in seed.iter().enumerate() {
            acc = acc * Fq::from_u64(257) + Fq::from_u64(*b as u64 + 1 + i as u64);
        }
        loop {
            let rhs = acc.square() * acc + acc; // x^3 + x
            if let Some(y) = rhs.sqrt() {
                let p = G1Affine {
                    x: acc,
                    y,
                    infinity: false,
                };
                // clear the cofactor to land in the order-r subgroup
                let q = p.to_projective().mul_small(params::COFACTOR);
                if !q.is_identity() {
                    return q;
                }
            }
            acc += Fq::one();
        }
    }

    /// Multiplication by a small `u64` scalar.
    pub fn mul_small(&self, k: u64) -> Self {
        let mut acc = G1Projective::identity();
        if k == 0 {
            return acc;
        }
        for i in (0..64 - k.leading_zeros()).rev() {
            acc = acc.double();
            if (k >> i) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }
}

impl Default for G1Projective {
    fn default() -> Self {
        Self::identity()
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1^2, Y1/Z1^3) == (X2/Z2^2, Y2/Z2^3)
        if self.is_identity() {
            return other.is_identity();
        }
        if other.is_identity() {
            return false;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1 && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}
impl Eq for G1Projective {}

impl fmt::Display for G1Projective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_affine())
    }
}

impl Add for G1Projective {
    type Output = G1Projective;
    fn add(self, rhs: Self) -> Self {
        G1Projective::add(&self, &rhs)
    }
}
impl Add<&G1Projective> for G1Projective {
    type Output = G1Projective;
    fn add(self, rhs: &G1Projective) -> Self {
        G1Projective::add(&self, rhs)
    }
}
impl AddAssign for G1Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = G1Projective::add(self, &rhs);
    }
}
impl Sub for G1Projective {
    type Output = G1Projective;
    fn sub(self, rhs: Self) -> Self {
        G1Projective::add(&self, &rhs.neg_point())
    }
}
impl SubAssign for G1Projective {
    fn sub_assign(&mut self, rhs: Self) {
        *self = G1Projective::add(self, &rhs.neg_point());
    }
}
impl Neg for G1Projective {
    type Output = G1Projective;
    fn neg(self) -> Self {
        self.neg_point()
    }
}
impl Mul<Fr> for G1Projective {
    type Output = G1Projective;
    fn mul(self, rhs: Fr) -> Self {
        self.mul_scalar(&rhs)
    }
}
impl Mul<&Fr> for G1Projective {
    type Output = G1Projective;
    fn mul(self, rhs: &Fr) -> Self {
        self.mul_scalar(rhs)
    }
}
impl Mul<Fr> for G1Affine {
    type Output = G1Projective;
    fn mul(self, rhs: Fr) -> G1Projective {
        self.to_projective().mul_scalar(&rhs)
    }
}
impl Sum for G1Projective {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(G1Projective::identity(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn generator_is_on_curve_and_in_subgroup() {
        let g = G1Affine::generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(g.to_projective().mul_by_fr_order().is_identity());
    }

    #[test]
    fn identity_behaviour() {
        let id = G1Projective::identity();
        let g = G1Projective::generator();
        assert_eq!(id + g, g);
        assert_eq!(g + id, g);
        assert_eq!(id.double(), id);
        assert!(id.to_affine().is_identity());
        assert!((g - g).is_identity());
    }

    #[test]
    fn add_matches_double() {
        let g = G1Projective::generator();
        assert_eq!(g + g, g.double());
        assert_eq!(g.add_affine(&g.to_affine()), g.double());
    }

    #[test]
    fn mixed_addition_matches_projective() {
        let mut r = rng();
        for _ in 0..8 {
            let a = G1Projective::random(&mut r);
            let b = G1Projective::random(&mut r);
            assert_eq!(a.add(&b), a.add_affine(&b.to_affine()));
        }
    }

    #[test]
    fn scalar_multiplication_properties() {
        let mut r = rng();
        let g = G1Projective::generator();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        // (a+b)G = aG + bG
        assert_eq!(g * (a + b), g * a + g * b);
        // (ab)G = a(bG)
        assert_eq!(g * (a * b), (g * b) * a);
        // rG = O
        assert!(g.mul_by_fr_order().is_identity());
        // 0 * G = O, 1 * G = G
        assert!((g * Fr::zero()).is_identity());
        assert_eq!(g * Fr::one(), g);
    }

    #[test]
    fn associativity_and_commutativity() {
        let mut r = rng();
        let a = G1Projective::random(&mut r);
        let b = G1Projective::random(&mut r);
        let c = G1Projective::random(&mut r);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + b, b + a);
    }

    #[test]
    fn affine_roundtrip_and_serialization() {
        let mut r = rng();
        for _ in 0..4 {
            let p = G1Projective::random(&mut r);
            let aff = p.to_affine();
            assert!(aff.is_on_curve());
            assert_eq!(aff.to_projective(), p);
            let bytes = aff.to_bytes();
            assert_eq!(G1Affine::from_bytes(&bytes).unwrap(), aff);
        }
        // Corrupted bytes must be rejected (point off curve).
        let mut bytes = G1Affine::generator().to_bytes();
        bytes[0] ^= 1;
        assert!(G1Affine::from_bytes(&bytes).is_none());
        // Identity round-trips.
        let id = G1Affine::identity().to_bytes();
        assert!(G1Affine::from_bytes(&id).unwrap().is_identity());
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let mut r = rng();
        let pts: Vec<G1Projective> = (0..10)
            .map(|i| {
                if i == 4 {
                    G1Projective::identity()
                } else {
                    G1Projective::random(&mut r)
                }
            })
            .collect();
        let batch = G1Projective::batch_to_affine(&pts);
        for (p, a) in pts.iter().zip(batch.iter()) {
            assert_eq!(p.to_affine(), *a);
        }
    }

    #[test]
    fn hash_to_curve_lands_in_subgroup() {
        let p = G1Projective::hash_to_curve(b"zkvc pedersen basis 0");
        let q = G1Projective::hash_to_curve(b"zkvc pedersen basis 1");
        assert!(p.to_affine().is_on_curve());
        assert!(p.mul_by_fr_order().is_identity());
        assert_ne!(p, q);
        // deterministic
        assert_eq!(p, G1Projective::hash_to_curve(b"zkvc pedersen basis 0"));
    }

    #[test]
    fn negation() {
        let mut r = rng();
        let p = G1Projective::random(&mut r);
        assert!((p + (-p)).is_identity());
        let aff = p.to_affine();
        assert!(aff.neg_point().is_on_curve());
    }
}
