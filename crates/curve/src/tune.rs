//! Adaptive kernel auto-tuning: per-host calibrated MSM/FFT dispatch.
//!
//! The MSM and FFT entry points make three scheduling decisions that used
//! to be compile-time guesses:
//!
//! 1. which **driver** an MSM of `n` points takes — the batch-affine
//!    signed-window engine or the plain projective window-parallel
//!    fallback (hard-coded cutover: 4096 points);
//! 2. which **signed window width** the batch-affine engine uses (a
//!    static 6-muls-per-addition cost model);
//! 3. whether an FFT of `2^k` points runs the **serial or parallel**
//!    kernel (hard-coded cutover: `2^12`).
//!
//! The committed `BENCH_kernels.json` trajectory shows the cost of
//! guessing wrong (a 2^18 FFT that dispatched parallel at 0.678x, a 2^11
//! MSM that gained nothing). This module replaces the guesses with a
//! **measured-on-this-host** [`TuneProfile`]: [`calibrate`] runs a short,
//! seeded probe sweeping the candidates per size class and records the
//! winners; [`activate`] installs the winners into the process-global
//! dispatch tables that [`crate::msm`] and the `zkvc_ff` FFT consult. A
//! profile serialises to versioned JSON ([`TuneProfile::to_json`] /
//! [`TuneProfile::from_json`]) so the runtime can persist it beside its
//! key cache and reload it at startup.
//!
//! **Determinism invariant:** every parameter here changes only the
//! schedule, never the result. MSM is exact group arithmetic under any
//! window width or driver, and the serial and parallel FFT kernels are
//! bit-identical — so proofs are bit-identical across any two profiles.
//! (`crates/runtime/tests/tune.rs` proves the same job under extreme
//! profiles and byte-compares the envelopes.)

use std::sync::RwLock;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc_ff::tune::FftParams;
use zkvc_ff::{EvaluationDomain, Field, Fr};

use crate::g1::{G1Affine, G1Projective};
use crate::msm::{
    default_num_chunks, msm_affine_with_window, msm_window_parallel, signed_window_size,
};

/// Version stamp of the persisted profile format. A loader seeing any
/// other version must fall back to [`MsmParams::STATIC`] defaults (with
/// a warning), never crash or misread.
pub const PROFILE_VERSION: u32 = 1;

/// Schema string stamped into the JSON document.
pub const PROFILE_SCHEMA: &str = "zkvc-tune-profile/v1";

/// Size classes are `floor(log2(n))`, clamped to this (the scalar
/// field's 2-adicity caps FFT domains at `2^32`, and MSMs beyond that
/// are out of scope for a software prover).
pub const MAX_LOG2: u32 = 32;

/// Per-size-class MSM dispatch decisions.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MsmParams {
    /// Bit `k` set: an MSM with `2^k <= n < 2^(k+1)` points takes the
    /// batch-affine signed-window driver; clear: the projective
    /// window-parallel fallback.
    pub affine_mask: u64,
    /// Signed window width override per size class; `0` defers to the
    /// static cost model ([`signed_window_size`]).
    pub windows: [u8; 33],
}

impl std::fmt::Debug for MsmParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsmParams")
            .field("affine_mask", &format_args!("{:#x}", self.affine_mask))
            .field(
                "windows",
                &self
                    .windows
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| **w != 0)
                    .map(|(k, w)| (k, *w))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MsmParams {
    /// The historical hard-coded dispatch: batch-affine for 4096 points
    /// and up, window widths from the static cost model.
    pub const STATIC: MsmParams = MsmParams {
        // Bits 12..=63: n >= 4096 <=> floor(log2 n) >= 12.
        affine_mask: !0u64 << 12,
        windows: [0; 33],
    };

    /// Whether the batch-affine driver is enabled for size class `log2`.
    #[must_use]
    pub fn use_affine(&self, log2: u32) -> bool {
        (self.affine_mask >> log2.min(MAX_LOG2)) & 1 == 1
    }

    /// The calibrated window width for size class `log2`, or `None` to
    /// defer to the cost model.
    #[must_use]
    pub fn window_override(&self, log2: u32) -> Option<usize> {
        match self.windows[log2.min(MAX_LOG2) as usize] {
            0 => None,
            c => Some(c as usize),
        }
    }

    /// Sets the driver decision for one size class.
    pub fn set_affine(&mut self, log2: u32, affine: bool) {
        let bit = 1u64 << log2.min(MAX_LOG2);
        if affine {
            self.affine_mask |= bit;
        } else {
            self.affine_mask &= !bit;
        }
    }

    /// Sets (or with `0` clears) the window override for one size class.
    pub fn set_window(&mut self, log2: u32, c: u8) {
        self.windows[log2.min(MAX_LOG2) as usize] = c;
    }
}

/// The dispatch decision [`crate::msm`] takes for an `n`-point MSM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsmDecision {
    /// The projective window-parallel fallback driver.
    Fallback,
    /// The batch-affine driver with this chunk count and window width.
    Affine {
        /// Point chunks split across worker threads.
        chunks: usize,
        /// Signed window width in bits.
        window: usize,
    },
}

impl std::fmt::Display for MsmDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsmDecision::Fallback => write!(f, "fallback"),
            MsmDecision::Affine { chunks, window } => write!(f, "affine:c{window}:x{chunks}"),
        }
    }
}

/// The decision `params` produce for an `n`-point MSM on this host
/// (introspection for benches and logs; [`crate::msm`] computes the same
/// thing inline).
#[must_use]
pub fn msm_decision(params: &MsmParams, n: usize) -> MsmDecision {
    if n == 0 {
        return MsmDecision::Fallback;
    }
    let lg = log2_class(n);
    if !params.use_affine(lg) {
        return MsmDecision::Fallback;
    }
    let chunks = default_num_chunks(n);
    let window = params
        .window_override(lg)
        .unwrap_or_else(|| signed_window_size(n, chunks));
    MsmDecision::Affine { chunks, window }
}

/// `floor(log2(n))` clamped to [`MAX_LOG2`]; `n` must be non-zero.
#[must_use]
pub fn log2_class(n: usize) -> u32 {
    debug_assert!(n > 0);
    (usize::BITS - 1 - n.leading_zeros()).min(MAX_LOG2)
}

static ACTIVE_MSM: RwLock<MsmParams> = RwLock::new(MsmParams::STATIC);

/// The currently installed MSM dispatch parameters.
pub fn msm_params() -> MsmParams {
    *ACTIVE_MSM.read().expect("msm tune params poisoned")
}

/// Installs MSM dispatch parameters process-wide, returning the previous
/// ones. Results are identical under any parameters.
pub fn set_msm_params(params: MsmParams) -> MsmParams {
    let mut slot = ACTIVE_MSM.write().expect("msm tune params poisoned");
    std::mem::replace(&mut slot, params)
}

/// One measured probe point, kept in the profile as provenance (and as
/// part of the host fingerprint alongside the core count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbePoint {
    /// `"msm"` or `"fft"`.
    pub kernel: String,
    /// Size class probed (`n = 2^log2`).
    pub log2: u32,
    /// Winning candidate, e.g. `"affine:c9"`, `"fallback"`, `"serial"`.
    pub choice: String,
    /// Median wall time of the winner across the probe repetitions, in
    /// microseconds.
    pub median_us: u64,
}

/// A versioned, per-host kernel dispatch profile.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneProfile {
    /// Format version ([`PROFILE_VERSION`]).
    pub version: u32,
    /// Core count of the host the probe ran on (host fingerprint — a
    /// reloaded profile is only trusted on a machine with the same
    /// parallelism).
    pub cores: usize,
    /// Calibrated MSM dispatch.
    pub msm: MsmParams,
    /// Calibrated FFT dispatch.
    pub fft: FftParams,
    /// The probe medians behind the decisions.
    pub probes: Vec<ProbePoint>,
}

impl TuneProfile {
    /// The static fallback profile: exactly today's hard-coded dispatch,
    /// used whenever no calibrated profile is available.
    #[must_use]
    pub fn static_profile() -> TuneProfile {
        TuneProfile {
            version: PROFILE_VERSION,
            cores: available_cores(),
            msm: MsmParams::STATIC,
            fft: FftParams::STATIC,
            probes: Vec::new(),
        }
    }

    /// Serialises the profile as a self-describing JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let logs_of = |mask: u64| -> String {
            let logs: Vec<String> = (0..=MAX_LOG2)
                .filter(|k| (mask >> k) & 1 == 1)
                .map(|k| k.to_string())
                .collect();
            format!("[{}]", logs.join(", "))
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{PROFILE_SCHEMA}\",");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(
            out,
            "  \"msm_affine_logs\": {},",
            logs_of(self.msm.affine_mask)
        );
        let windows: Vec<String> = self
            .msm
            .windows
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0)
            .map(|(k, w)| format!("[{k}, {w}]"))
            .collect();
        let _ = writeln!(out, "  \"msm_windows\": [{}],", windows.join(", "));
        let _ = writeln!(
            out,
            "  \"fft_parallel_logs\": {},",
            logs_of(self.fft.par_mask)
        );
        let _ = writeln!(out, "  \"probes\": [");
        for (i, p) in self.probes.iter().enumerate() {
            // Probe strings come from a fixed vocabulary with nothing to
            // escape; reject anything else rather than emit broken JSON.
            assert!(
                !p.kernel.contains(['"', '\\']) && !p.choice.contains(['"', '\\']),
                "probe strings must not need JSON escaping"
            );
            let _ = writeln!(
                out,
                "    {{\"kernel\": \"{}\", \"log2\": {}, \"choice\": \"{}\", \"median_us\": {}}}{}",
                p.kernel,
                p.log2,
                p.choice,
                p.median_us,
                if i + 1 < self.probes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a profile from JSON. A structurally valid document with
    /// the wrong version is [`ProfileError::Version`] — callers treat it
    /// as "no profile" and fall back to the static defaults.
    pub fn from_json(text: &str) -> Result<TuneProfile, ProfileError> {
        let value = json::parse(text).map_err(ProfileError::Parse)?;
        let obj = value
            .as_object()
            .ok_or_else(|| ProfileError::Parse("profile must be a JSON object".into()))?;
        let version = json::get_u64(obj, "version")
            .ok_or_else(|| ProfileError::Parse("profile is missing \"version\"".into()))?
            as u32;
        let schema = json::get_str(obj, "schema");
        if version != PROFILE_VERSION || schema.is_some_and(|s| s != PROFILE_SCHEMA) {
            return Err(ProfileError::Version { found: version });
        }
        let cores = json::get_u64(obj, "cores")
            .ok_or_else(|| ProfileError::Parse("profile is missing \"cores\"".into()))?
            as usize;

        let mask_from = |key: &str| -> Result<u64, ProfileError> {
            let arr = json::get_arr(obj, key)
                .ok_or_else(|| ProfileError::Parse(format!("profile is missing \"{key}\"")))?;
            let mut mask = 0u64;
            for v in arr {
                let k = v.as_u64().ok_or_else(|| {
                    ProfileError::Parse(format!("\"{key}\" entries must be ints"))
                })?;
                if k > u64::from(MAX_LOG2) {
                    return Err(ProfileError::Parse(format!(
                        "\"{key}\" log {k} exceeds {MAX_LOG2}"
                    )));
                }
                mask |= 1u64 << k;
            }
            Ok(mask)
        };
        // The in-memory masks extend the top class upward so clamped
        // lookups above 2^32 follow the 2^32 decision.
        let extend_top = |mask: u64| -> u64 {
            if (mask >> MAX_LOG2) & 1 == 1 {
                mask | (!0u64 << MAX_LOG2)
            } else {
                mask
            }
        };
        let affine_mask = extend_top(mask_from("msm_affine_logs")?);
        let par_mask = extend_top(mask_from("fft_parallel_logs")?);

        let mut windows = [0u8; 33];
        let window_pairs = json::get_arr(obj, "msm_windows")
            .ok_or_else(|| ProfileError::Parse("profile is missing \"msm_windows\"".into()))?;
        for pair in window_pairs {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                ProfileError::Parse("\"msm_windows\" entries are [log2, c]".into())
            })?;
            let (k, c) = (pair[0].as_u64(), pair[1].as_u64());
            match (k, c) {
                (Some(k), Some(c)) if k <= u64::from(MAX_LOG2) && (1..=32).contains(&c) => {
                    windows[k as usize] = c as u8;
                }
                _ => {
                    return Err(ProfileError::Parse(
                        "\"msm_windows\" entries are [log2 <= 32, 1 <= c <= 32]".into(),
                    ))
                }
            }
        }

        let mut probes = Vec::new();
        if let Some(arr) = json::get_arr(obj, "probes") {
            for p in arr {
                let p = p
                    .as_object()
                    .ok_or_else(|| ProfileError::Parse("probe entries must be objects".into()))?;
                probes.push(ProbePoint {
                    kernel: json::get_str(p, "kernel")
                        .ok_or_else(|| ProfileError::Parse("probe missing \"kernel\"".into()))?
                        .to_string(),
                    log2: json::get_u64(p, "log2")
                        .ok_or_else(|| ProfileError::Parse("probe missing \"log2\"".into()))?
                        as u32,
                    choice: json::get_str(p, "choice")
                        .ok_or_else(|| ProfileError::Parse("probe missing \"choice\"".into()))?
                        .to_string(),
                    median_us: json::get_u64(p, "median_us")
                        .ok_or_else(|| ProfileError::Parse("probe missing \"median_us\"".into()))?,
                });
            }
        }

        Ok(TuneProfile {
            version,
            cores,
            msm: MsmParams {
                affine_mask,
                windows,
            },
            fft: FftParams { par_mask },
            probes,
        })
    }
}

/// Why a profile document could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// The document parsed but carries an unknown (stale or future)
    /// version; callers fall back to static defaults with a warning.
    Version {
        /// The version the document declared.
        found: u32,
    },
    /// The document is not a valid profile at all.
    Parse(String),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Version { found } => write!(
                f,
                "unsupported tune-profile version {found} (this build speaks {PROFILE_VERSION})"
            ),
            ProfileError::Parse(msg) => write!(f, "malformed tune profile: {msg}"),
        }
    }
}

/// Installs a profile's decisions into the process-global dispatch
/// tables (MSM here, FFT in `zkvc_ff`). Returns the previously active
/// `(msm, fft)` parameters so callers can restore them.
pub fn activate(profile: &TuneProfile) -> (MsmParams, FftParams) {
    (
        set_msm_params(profile.msm),
        zkvc_ff::tune::set_fft_params(profile.fft),
    )
}

/// Restores previously active parameters (the counterpart of
/// [`activate`] for scoped use in tests and benches).
pub fn restore(previous: (MsmParams, FftParams)) {
    set_msm_params(previous.0);
    zkvc_ff::tune::set_fft_params(previous.1);
}

/// What the calibration probe sweeps.
#[derive(Clone, Debug)]
pub struct ProbeConfig {
    /// MSM size classes to probe (`n = 2^log2` points each).
    pub msm_logs: Vec<u32>,
    /// FFT size classes to probe.
    pub fft_logs: Vec<u32>,
    /// Repetitions per candidate; the median is recorded.
    pub reps: usize,
    /// Seed for the probe's point/scalar generation (the measurement is
    /// timing-noisy by nature, but the workload is reproducible).
    pub seed: u64,
}

impl ProbeConfig {
    /// The standard probe: MSM 2^10..2^14, FFT 2^10..2^18 — a few
    /// seconds of wall time, covering every hard-coded cutover.
    #[must_use]
    pub fn standard() -> ProbeConfig {
        ProbeConfig {
            msm_logs: (10..=14).collect(),
            fft_logs: (10..=18).collect(),
            reps: 3,
            seed: 0x7A7E,
        }
    }

    /// A sub-second probe for CI smoke jobs.
    #[must_use]
    pub fn quick() -> ProbeConfig {
        ProbeConfig {
            msm_logs: (8..=10).collect(),
            fft_logs: (8..=12).collect(),
            reps: 2,
            seed: 0x7A7E,
        }
    }
}

/// Worker threads the dispatch layer would use on this host.
fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Median of a few wall-clock runs of `f`, in microseconds.
fn median_us<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            let r = f();
            let us = t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            std::hint::black_box(r);
            us
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the calibration probe and returns the winning dispatch decisions
/// as a [`TuneProfile`] (not yet activated or persisted — callers decide
/// both). Size classes outside the probed ranges inherit the static
/// defaults below the range and the largest probed class's driver
/// decision above it (with the window back on the cost model, which
/// scales with `n`).
#[must_use]
pub fn calibrate(config: &ProbeConfig) -> TuneProfile {
    let cores = available_cores();
    let mut msm = MsmParams::STATIC;
    let mut fft = FftParams::STATIC;
    let mut probes = Vec::new();

    // --- MSM: per probed class, race the projective fallback against
    // the batch-affine driver at windows around the cost model's pick.
    if let Some(&max_log) = config.msm_logs.iter().max() {
        let n_max = 1usize << max_log;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let seedlings: Vec<G1Projective> = (0..8).map(|_| G1Projective::random(&mut rng)).collect();
        let mut cur = seedlings[0];
        let bases: Vec<G1Affine> = (0..n_max)
            .map(|i| {
                cur = cur.add(&seedlings[i % 8]);
                cur.to_affine()
            })
            .collect();
        let scalars: Vec<Fr> = (0..n_max).map(|_| Fr::random(&mut rng)).collect();

        for &log2 in &config.msm_logs {
            let n = 1usize << log2;
            let (b, s) = (&bases[..n], &scalars[..n]);
            let chunks = default_num_chunks(n);
            let model_c = signed_window_size(n, chunks);

            let mut best_choice = "fallback".to_string();
            let mut best_us = median_us(config.reps, || msm_window_parallel(b, s));
            let lo = model_c.saturating_sub(2).max(3);
            let hi = (model_c + 2).min(15);
            for c in lo..=hi {
                let us = median_us(config.reps, || msm_affine_with_window(b, s, chunks, c));
                if us < best_us {
                    best_us = us;
                    best_choice = format!("affine:c{c}");
                }
            }

            match best_choice.strip_prefix("affine:c") {
                Some(c) => {
                    msm.set_affine(log2, true);
                    msm.set_window(log2, c.parse::<u8>().expect("probe window is numeric"));
                }
                None => {
                    msm.set_affine(log2, false);
                    msm.set_window(log2, 0);
                }
            }
            probes.push(ProbePoint {
                kernel: "msm".into(),
                log2,
                choice: best_choice,
                median_us: best_us,
            });
        }
        // Above the probed range: the largest class's driver verdict,
        // window back on the (n-scaling) cost model.
        let top_affine = msm.use_affine(max_log);
        for log2 in (max_log + 1)..=MAX_LOG2 {
            msm.set_affine(log2, top_affine);
            msm.set_window(log2, 0);
        }
        if top_affine {
            msm.affine_mask |= !0u64 << MAX_LOG2;
        } else {
            msm.affine_mask &= !(!0u64 << MAX_LOG2);
        }
    }

    // --- FFT: per probed class, serial cached-twiddle vs the parallel
    // two-phase kernel at the host's thread count. On a single core the
    // parallel kernel is pure spawn overhead; it is not raced, and the
    // class is pinned serial.
    if let Some(&max_log) = config.fft_logs.iter().max() {
        let n_max = 1usize << max_log;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFF7);
        let values: Vec<Fr> = (0..n_max).map(|_| Fr::random(&mut rng)).collect();
        for &log2 in &config.fft_logs {
            let n = 1usize << log2;
            let domain = EvaluationDomain::<Fr>::new(n).expect("probe domain within 2-adicity");
            let serial_us = median_us(config.reps, || {
                let mut v = values[..n].to_vec();
                domain.fft_in_place_serial(&mut v);
                v
            });
            let (parallel, choice, best_us) = if cores > 1 {
                let par_us = median_us(config.reps, || {
                    let mut v = values[..n].to_vec();
                    domain.fft_in_place_parallel(&mut v, cores);
                    v
                });
                if par_us < serial_us {
                    (true, "parallel".to_string(), par_us)
                } else {
                    (false, "serial".to_string(), serial_us)
                }
            } else {
                (false, "serial".to_string(), serial_us)
            };
            fft.set_parallel(log2, parallel);
            probes.push(ProbePoint {
                kernel: "fft".into(),
                log2,
                choice,
                median_us: best_us,
            });
        }
        let top_parallel = fft.parallel(max_log, 2.max(cores));
        for log2 in (max_log + 1)..=MAX_LOG2 {
            fft.set_parallel(log2, top_parallel);
        }
        if top_parallel {
            fft.par_mask |= !0u64 << zkvc_ff::tune::MAX_LOG2;
        } else {
            fft.par_mask &= !(!0u64 << zkvc_ff::tune::MAX_LOG2);
        }
    }

    TuneProfile {
        version: PROFILE_VERSION,
        cores,
        msm,
        fft,
        probes,
    }
}

/// A minimal JSON reader for the profile document: objects, arrays,
/// strings, unsigned integers, booleans and null — nothing the profile
/// format does not use. Unknown keys are preserved-and-ignored so minor
/// additive evolution does not break old readers.
mod json {
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    pub fn get_u64(obj: &[(String, Value)], key: &str) -> Option<u64> {
        get(obj, key).and_then(Value::as_u64)
    }
    pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a str> {
        get(obj, key).and_then(Value::as_str)
    }
    pub fn get_arr<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a [Value]> {
        get(obj, key).and_then(Value::as_array)
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at offset {start}"))
            }
            _ => Err(format!("unexpected byte at offset {}", *pos)),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            *pos += 1;
            match b {
                b'"' => return Ok(out),
                // The profile vocabulary never needs escapes beyond
                // these; reject the rest rather than mis-decode.
                b'\\' => match bytes.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    _ => return Err(format!("unsupported escape at offset {}", *pos)),
                },
                _ if b < 0x80 => out.push(b as char),
                _ => return Err(format!("non-ASCII profile byte at offset {}", *pos)),
            }
        }
        Err("unterminated string".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_params_reproduce_historical_msm_dispatch() {
        let p = MsmParams::STATIC;
        for n in [1usize, 63, 512, 4095] {
            assert_eq!(msm_decision(&p, n), MsmDecision::Fallback, "n={n}");
        }
        for n in [4096usize, 8192, 1 << 16] {
            let d = msm_decision(&p, n);
            let expect = signed_window_size(n, default_num_chunks(n));
            assert_eq!(
                d,
                MsmDecision::Affine {
                    chunks: default_num_chunks(n),
                    window: expect
                },
                "n={n}"
            );
        }
    }

    #[test]
    fn window_overrides_steer_the_decision() {
        let mut p = MsmParams::STATIC;
        p.set_affine(11, true);
        p.set_window(11, 7);
        match msm_decision(&p, 3000) {
            MsmDecision::Affine { window: 7, .. } => {}
            other => panic!("expected affine c7, got {other}"),
        }
        p.set_window(11, 0);
        match msm_decision(&p, 3000) {
            MsmDecision::Affine { window, .. } => {
                assert_eq!(window, signed_window_size(3000, default_num_chunks(3000)));
            }
            other => panic!("expected cost-model affine, got {other}"),
        }
    }

    #[test]
    fn profile_json_round_trips() {
        let mut profile = TuneProfile::static_profile();
        profile.msm.set_affine(11, true);
        profile.msm.set_window(11, 7);
        profile.msm.set_window(14, 10);
        profile.fft.set_parallel(18, false);
        profile.probes.push(ProbePoint {
            kernel: "msm".into(),
            log2: 11,
            choice: "affine:c7".into(),
            median_us: 2311,
        });
        let json = profile.to_json();
        let back = TuneProfile::from_json(&json).expect("round trip");
        assert_eq!(back, profile);
    }

    #[test]
    fn future_version_is_a_version_error_not_a_parse_error() {
        let mut profile = TuneProfile::static_profile();
        profile.version = PROFILE_VERSION + 1;
        // Serialise with the future stamp but the current schema body.
        let json = profile.to_json();
        match TuneProfile::from_json(&json) {
            Err(ProfileError::Version { found }) => assert_eq!(found, PROFILE_VERSION + 1),
            other => panic!("expected version error, got {other:?}"),
        }
        assert!(matches!(
            TuneProfile::from_json("{\"version\": 1, \"cores\": []}"),
            Err(ProfileError::Parse(_))
        ));
        assert!(matches!(
            TuneProfile::from_json("not json at all"),
            Err(ProfileError::Parse(_))
        ));
    }

    #[test]
    fn activate_restores_cleanly() {
        let mut profile = TuneProfile::static_profile();
        profile.msm.set_affine(10, true);
        profile.msm.set_window(10, 5);
        profile.fft.set_parallel(10, true);
        let previous = activate(&profile);
        assert_eq!(msm_params(), profile.msm);
        assert_eq!(zkvc_ff::tune::fft_params(), profile.fft);
        restore(previous);
    }

    #[test]
    fn quick_calibration_produces_a_valid_profile() {
        let profile = calibrate(&ProbeConfig {
            msm_logs: vec![6, 7],
            fft_logs: vec![6, 8],
            reps: 1,
            seed: 1,
        });
        assert_eq!(profile.version, PROFILE_VERSION);
        assert!(profile.cores >= 1);
        // Every probed class is recorded.
        assert_eq!(profile.probes.len(), 4);
        // The document round-trips.
        let back = TuneProfile::from_json(&profile.to_json()).expect("round trip");
        assert_eq!(back, profile);
        // On a single-core host the FFT must be pinned serial everywhere
        // probed (and the decision table honours the threads gate anyway).
        if profile.cores == 1 {
            assert!(profile
                .probes
                .iter()
                .filter(|p| p.kernel == "fft")
                .all(|p| p.choice == "serial"));
        }
    }
}
