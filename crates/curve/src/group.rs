//! Generic short-Weierstrass group abstractions.
//!
//! The MSM kernel (and any future multi-curve code) is written against these
//! traits rather than the concrete `G1` types, so the `G1` and `G2` sides of
//! the Groth16 prover share one implementation. For the Type-1 (symmetric)
//! pairing used by this stack `G2 == G1`, but the prover's `b_g2_query` MSM
//! goes through the same generic entry point a distinct-`G2` curve would.

use core::fmt::Debug;

use zkvc_ff::{Field, PrimeField};

/// A point on a short-Weierstrass curve `y^2 = x^3 + a*x + b` in affine
/// coordinates, plus the point at infinity.
///
/// The coordinate accessors exist so generic kernels (batch-affine bucket
/// accumulation in the MSM) can run the affine addition formulas with
/// batched inversions; [`Self::from_xy_unchecked`] is the matching
/// constructor and must only be fed coordinates produced by the curve's own
/// group law.
pub trait AffinePoint:
    Copy + Clone + Debug + PartialEq + Eq + Send + Sync + Sized + 'static
{
    /// The coordinate (base) field.
    type Base: Field;
    /// The scalar field of the prime-order (sub)group.
    type Scalar: PrimeField;
    /// The projective representation of the same group.
    type Projective: CurveGroup<Base = Self::Base, Scalar = Self::Scalar, Affine = Self>;

    /// The curve coefficient `a` (used by the doubling formula).
    fn coeff_a() -> Self::Base;

    /// The group identity (point at infinity).
    fn identity() -> Self;

    /// Returns `true` iff this is the identity.
    fn is_identity(&self) -> bool;

    /// The affine coordinates, or `None` for the identity.
    fn xy(&self) -> Option<(Self::Base, Self::Base)>;

    /// Builds a point from coordinates assumed to satisfy the curve
    /// equation (no validation).
    fn from_xy_unchecked(x: Self::Base, y: Self::Base) -> Self;

    /// The additive inverse.
    fn neg_point(&self) -> Self;

    /// Converts to projective coordinates.
    fn to_projective(&self) -> Self::Projective;
}

/// A prime-order group in a projective representation: the arithmetic
/// surface the generic MSM drivers need.
pub trait CurveGroup:
    Copy + Clone + Debug + PartialEq + Eq + Send + Sync + Sized + 'static
{
    /// The coordinate (base) field.
    type Base: Field;
    /// The scalar field.
    type Scalar: PrimeField;
    /// The affine representation of the same group.
    type Affine: AffinePoint<Base = Self::Base, Scalar = Self::Scalar, Projective = Self>;

    /// The group identity.
    fn identity() -> Self;

    /// Returns `true` iff this is the identity.
    fn is_identity(&self) -> bool;

    /// Point doubling.
    fn double(&self) -> Self;

    /// Full projective addition.
    fn add(&self, other: &Self) -> Self;

    /// Mixed addition with an affine point.
    fn add_affine(&self, other: &Self::Affine) -> Self;

    /// The additive inverse.
    fn neg_point(&self) -> Self;

    /// Converts to affine coordinates (one inversion).
    fn to_affine(&self) -> Self::Affine;

    /// Scalar multiplication (reference implementation for tests/small
    /// inputs; kernels use MSM instead).
    fn mul_scalar(&self, scalar: &Self::Scalar) -> Self;
}
