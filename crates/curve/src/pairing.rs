//! The Type-1 (symmetric) reduced Tate pairing.
//!
//! For the supersingular curve `E: y^2 = x^3 + x` over `Fq` with
//! `p = 3 mod 4`, the distortion map `phi(x, y) = (-x, i*y)` sends `E(Fq)`
//! points into `E(Fq2) \ E(Fq)`. The modified Tate pairing
//! `e(P, Q) = f_{r,P}(phi(Q))^((p^2 - 1)/r)` is a non-degenerate symmetric
//! bilinear map `G1 x G1 -> GT`, where `GT` is the order-`r` subgroup of
//! `Fq2*`.
//!
//! The Miller loop keeps the line-function numerator and vertical-line
//! denominator in separate accumulators so only one `Fq2` inversion is
//! needed per pairing.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg};

use zkvc_ff::fields::params;
use zkvc_ff::{Field, Fq, Fq2, Fr, PrimeField};

use crate::g1::G1Affine;

/// An element of the pairing target group `GT` (the order-`r` subgroup of
/// `Fq2*`), written additively to mirror how Groth16 equations are stated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Gt(pub Fq2);

impl Gt {
    /// The identity element (multiplicative `1` in `Fq2`).
    pub fn identity() -> Self {
        Gt(Fq2::one())
    }

    /// Returns `true` iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.0 == Fq2::one()
    }

    /// Scalar multiplication (exponentiation of the underlying `Fq2` value).
    pub fn mul_scalar(&self, k: &Fr) -> Self {
        Gt(self.0.pow(&k.to_canonical()))
    }
}

impl fmt::Display for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({})", self.0)
    }
}

// `Gt` is written additively although its representation is the
// multiplicative subgroup of Fq2, hence the "suspicious" `*` underneath.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gt {
    type Output = Gt;
    fn add(self, rhs: Gt) -> Gt {
        Gt(self.0 * rhs.0)
    }
}
#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gt {
    fn add_assign(&mut self, rhs: Gt) {
        self.0 *= rhs.0;
    }
}
impl Neg for Gt {
    type Output = Gt;
    fn neg(self) -> Gt {
        Gt(self.0.inverse().expect("GT elements are non-zero"))
    }
}
impl Mul<Fr> for Gt {
    type Output = Gt;
    fn mul(self, rhs: Fr) -> Gt {
        self.mul_scalar(&rhs)
    }
}

/// Applies the distortion map `phi(x, y) = (-x, i*y)`, producing the `Fq2`
/// coordinates of the image point.
fn distort(q: &G1Affine) -> (Fq2, Fq2) {
    let x = Fq2::new(-q.x, Fq::zero());
    let y = Fq2::new(Fq::zero(), q.y);
    (x, y)
}

/// The (un-exponentiated) Miller loop `f_{r, P}(phi(Q))`.
///
/// Returns `Fq2::one()` when either input is the identity, so that the full
/// pairing of an identity point is the identity of `GT`.
pub fn pairing_miller_loop(p: &G1Affine, q: &G1Affine) -> Fq2 {
    if p.is_identity() || q.is_identity() {
        return Fq2::one();
    }
    let (sx, sy) = distort(q);

    // Accumulators: f = num / den, updated per Miller step.
    let mut num = Fq2::one();
    let mut den = Fq2::one();

    // Current multiple T = [k]P in affine coordinates.
    let mut tx = p.x;
    let mut ty = p.y;
    let mut t_infinity = false;

    let r = <Fr as PrimeField>::MODULUS;
    let nbits = zkvc_ff::arith::num_bits_4(&r);

    for i in (0..nbits - 1).rev() {
        // --- doubling step ---
        num = num.square();
        den = den.square();
        if !t_infinity {
            if ty.is_zero() {
                // Tangent is vertical: line = x(S) - x(T), T becomes infinity.
                num *= Fq2::new(-tx, Fq::zero()) + sx;
                t_infinity = true;
            } else {
                // lambda = (3 x^2 + 1) / (2 y)   (curve a = 1)
                let lambda = (tx.square() * Fq::from_u64(3) + Fq::one())
                    * (ty.double()).inverse().expect("ty != 0");
                let x3 = lambda.square() - tx.double();
                let y3 = lambda * (tx - x3) - ty;
                // line through T with slope lambda, evaluated at S:
                //   l(S) = y_S - y_T - lambda (x_S - x_T)
                let l = sy
                    - Fq2::new(ty, Fq::zero())
                    - Fq2::new(lambda, Fq::zero()) * (sx - Fq2::new(tx, Fq::zero()));
                // vertical at 2T: v(S) = x_S - x_{2T}
                let v = sx - Fq2::new(x3, Fq::zero());
                num *= l;
                den *= v;
                tx = x3;
                ty = y3;
            }
        }

        // --- addition step ---
        if zkvc_ff::arith::bit_4(&r, i) && !t_infinity {
            if tx == p.x && ty == -p.y {
                // T + P = infinity: line is the vertical through T.
                num *= sx - Fq2::new(tx, Fq::zero());
                t_infinity = true;
            } else if tx == p.x {
                // T == P: tangent line (same as doubling).
                let lambda = (tx.square() * Fq::from_u64(3) + Fq::one())
                    * (ty.double()).inverse().expect("ty != 0");
                let x3 = lambda.square() - tx.double();
                let y3 = lambda * (tx - x3) - ty;
                let l = sy
                    - Fq2::new(ty, Fq::zero())
                    - Fq2::new(lambda, Fq::zero()) * (sx - Fq2::new(tx, Fq::zero()));
                let v = sx - Fq2::new(x3, Fq::zero());
                num *= l;
                den *= v;
                tx = x3;
                ty = y3;
            } else {
                let lambda = (p.y - ty) * (p.x - tx).inverse().expect("tx != p.x");
                let x3 = lambda.square() - tx - p.x;
                let y3 = lambda * (tx - x3) - ty;
                let l = sy
                    - Fq2::new(ty, Fq::zero())
                    - Fq2::new(lambda, Fq::zero()) * (sx - Fq2::new(tx, Fq::zero()));
                let v = sx - Fq2::new(x3, Fq::zero());
                num *= l;
                den *= v;
                tx = x3;
                ty = y3;
            }
        }
    }

    num * den
        .inverse()
        .expect("denominator never vanishes for valid inputs")
}

/// Final exponentiation `f -> f^((p^2 - 1)/r)` into the order-`r` subgroup.
fn final_exponentiation(f: &Fq2) -> Fq2 {
    // Split (p^2-1)/r = (p-1) * ((p+1)/r) would need r | p+1 (true here), but
    // a direct 8-limb exponentiation is simple and fast enough for the
    // constant number of pairings per verification.
    f.pow(&params::FINAL_EXP)
}

/// The reduced Tate pairing `e(P, Q)`.
///
/// Symmetric (`e(P, Q) == e(Q, P)`) and bilinear; returns the identity when
/// either argument is the point at infinity.
pub fn pairing(p: &G1Affine, q: &G1Affine) -> Gt {
    Gt(final_exponentiation(&pairing_miller_loop(p, q)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Projective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn pairing_is_non_degenerate() {
        let g = G1Affine::generator();
        let e = pairing(&g, &g);
        assert!(!e.is_identity());
        // e(G, G) has order r: e^r == 1
        assert!(e.mul_scalar(&-Fr::one()) + e == Gt::identity());
    }

    #[test]
    fn pairing_with_identity_is_identity() {
        let g = G1Affine::generator();
        let id = G1Affine::identity();
        assert!(pairing(&g, &id).is_identity());
        assert!(pairing(&id, &g).is_identity());
    }

    #[test]
    fn pairing_is_bilinear() {
        let mut r = rng();
        let g = G1Projective::generator();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let ga = (g * a).to_affine();
        let gb = (g * b).to_affine();
        let gab = (g * (a * b)).to_affine();
        let e1 = pairing(&ga, &gb);
        let e2 = pairing(&gab, &G1Affine::generator());
        let e3 = pairing(&G1Affine::generator(), &gab);
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        // e(G,G)^(ab) computed in GT
        let base = pairing(&G1Affine::generator(), &G1Affine::generator());
        assert_eq!(base.mul_scalar(&(a * b)), e1);
    }

    #[test]
    fn pairing_is_symmetric() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G1Projective::random(&mut r).to_affine();
        assert_eq!(pairing(&p, &q), pairing(&q, &p));
    }

    #[test]
    fn pairing_additivity_in_first_argument() {
        let mut r = rng();
        let g = G1Projective::generator();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let q = G1Projective::random(&mut r).to_affine();
        let lhs = pairing(&(g * (a + b)).to_affine(), &q);
        let rhs = pairing(&(g * a).to_affine(), &q) + pairing(&(g * b).to_affine(), &q);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_respects_negation() {
        let mut r = rng();
        let p = G1Projective::random(&mut r).to_affine();
        let q = G1Projective::random(&mut r).to_affine();
        let e = pairing(&p, &q);
        let e_neg = pairing(&p.neg_point(), &q);
        assert_eq!(e + e_neg, Gt::identity());
    }
}
