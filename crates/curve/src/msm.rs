//! Multi-scalar multiplication (Pippenger's bucket method).
//!
//! The dominant cost of the Groth16 prover is five large MSMs over the CRS.
//! The fast path here ([`msm`]) combines three classic optimisations on top
//! of the bucketed window method:
//!
//! 1. **Signed-digit windows** — scalars are decomposed into digits in
//!    `(-2^(c-1), 2^(c-1)]`, halving the bucket count per window (negative
//!    digits add the negated point, which is free in affine coordinates).
//! 2. **Chunk-parallel scheduling** — the *points* are split across worker
//!    threads; each chunk computes partial bucket sums for every window, so
//!    total work scales with cores instead of every thread walking all `N`
//!    points (the seed implementation, kept as [`msm_window_parallel`],
//!    parallelised only across the ~30 windows).
//! 3. **Batch-affine bucket accumulation** — bucket additions are performed
//!    in affine coordinates with the per-addition field inversion amortised
//!    across a whole round of independent bucket updates via
//!    [`batch_inverse`] (Montgomery's trick), making each digit addition
//!    several times cheaper than a mixed projective addition.
//!
//! Everything is generic over [`AffinePoint`]/[`CurveGroup`], so the `G1`
//! and `G2` MSMs of the prover share this single implementation.

use crossbeam::thread;
use zkvc_ff::{batch_inverse, cancel, Field, PrimeField};

use crate::group::{AffinePoint, CurveGroup};

/// Computes `sum_i scalars[i] * bases[i]` with Pippenger's algorithm,
/// single-threaded, using unsigned digits and projective buckets. Kept as
/// the simple reference implementation (and the small-input path).
///
/// # Panics
/// Panics if `bases.len() != scalars.len()`.
pub fn msm_serial<A: AffinePoint>(bases: &[A], scalars: &[A::Scalar]) -> A::Projective {
    assert_eq!(bases.len(), scalars.len(), "bases/scalars length mismatch");
    if bases.is_empty() {
        return A::Projective::identity();
    }
    let c = unsigned_window_size(bases.len());
    let num_bits = A::Scalar::MODULUS_BITS as usize;
    let windows: Vec<usize> = (0..num_bits).step_by(c).collect();
    let canon: Vec<[u64; 4]> = scalars
        .iter()
        .map(zkvc_ff::PrimeField::to_canonical)
        .collect();

    let window_sums: Vec<A::Projective> = windows
        .iter()
        .map(|&w_start| unsigned_window_sum(bases, &canon, w_start, c))
        .collect();

    combine_windows(&window_sums, c)
}

/// The seed parallel driver: Pippenger with the *windows* split across
/// worker threads. Every thread still walks all `N` points, so total work
/// is `N x windows` regardless of core count. Kept as the baseline that
/// the chunk-parallel [`msm`] is benchmarked against (see
/// `crates/bench/src/bin/kernels.rs`).
///
/// # Panics
/// Panics if `bases.len() != scalars.len()`.
pub fn msm_window_parallel<A: AffinePoint>(bases: &[A], scalars: &[A::Scalar]) -> A::Projective {
    assert_eq!(bases.len(), scalars.len(), "bases/scalars length mismatch");
    if bases.is_empty() {
        return A::Projective::identity();
    }
    if bases.len() < 64 {
        return msm_serial(bases, scalars);
    }
    // Small-MSM path: one checkpoint on the orchestrating thread per call
    // (the window workers below are not joined individually, so they must
    // not raise the cancellation marker themselves).
    cancel::checkpoint();
    let c = unsigned_window_size(bases.len());
    let num_bits = A::Scalar::MODULUS_BITS as usize;
    let windows: Vec<usize> = (0..num_bits).step_by(c).collect();
    let canon: Vec<[u64; 4]> = scalars
        .iter()
        .map(zkvc_ff::PrimeField::to_canonical)
        .collect();
    let n_threads = std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(windows.len());

    let mut window_sums = vec![A::Projective::identity(); windows.len()];
    let chunk = windows.len().div_ceil(n_threads);
    thread::scope(|s| {
        for (out_chunk, win_chunk) in window_sums.chunks_mut(chunk).zip(windows.chunks(chunk)) {
            let canon = &canon;
            s.spawn(move |_| {
                for (out, &w_start) in out_chunk.iter_mut().zip(win_chunk.iter()) {
                    *out = unsigned_window_sum(bases, canon, w_start, c);
                }
            });
        }
    })
    .expect("msm worker thread panicked");

    combine_windows(&window_sums, c)
}

/// Computes `sum_i scalars[i] * bases[i]`: signed-digit windows,
/// batch-affine buckets, and the points chunked across worker threads so
/// the work scales with available cores.
///
/// Dispatch — which driver runs and with what window width — is taken
/// from the process-global [`crate::tune`] parameters. The static
/// defaults reproduce the historical behavior (projective fallback below
/// 4096 points, cost-model window above); a calibrated
/// [`crate::tune::TuneProfile`] replaces the guesses with decisions
/// measured on this host. The result is identical either way.
///
/// # Panics
/// Panics if `bases.len() != scalars.len()`.
pub fn msm<A: AffinePoint>(bases: &[A], scalars: &[A::Scalar]) -> A::Projective {
    assert_eq!(bases.len(), scalars.len(), "bases/scalars length mismatch");
    let n = bases.len();
    if n == 0 {
        return A::Projective::identity();
    }
    let params = crate::tune::msm_params();
    let lg = crate::tune::log2_class(n);
    if !params.use_affine(lg) {
        // For small inputs the batched-inversion amortisation is too weak
        // (few buckets per batch) to beat the plain projective driver.
        return msm_window_parallel(bases, scalars);
    }
    let num_chunks = default_num_chunks(n);
    let c = params
        .window_override(lg)
        .unwrap_or_else(|| signed_window_size(n, num_chunks));
    msm_affine_with_window(bases, scalars, num_chunks, c)
}

/// The chunk count [`msm`] splits `n` points into on this host: one chunk
/// per available thread, shrunk so no chunk drops below ~`MIN_CHUNK`
/// points (spawn + bucket-merge overhead dominates tiny chunks).
pub(crate) fn default_num_chunks(n: usize) -> usize {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    const MIN_CHUNK: usize = 1 << 8;
    threads.min(n.div_ceil(MIN_CHUNK)).max(1)
}

/// The chunk-parallel driver with an explicit chunk count and the window
/// width from the static cost model (exposed to the tests so the
/// multi-chunk path is exercised deterministically).
#[cfg(test)]
fn msm_with_chunks<A: AffinePoint>(
    bases: &[A],
    scalars: &[A::Scalar],
    num_chunks: usize,
) -> A::Projective {
    let c = signed_window_size(bases.len(), num_chunks);
    msm_affine_with_window(bases, scalars, num_chunks, c)
}

/// The batch-affine chunk-parallel driver with every schedule parameter
/// explicit — the calibration probe races candidate windows through this
/// entry point.
pub(crate) fn msm_affine_with_window<A: AffinePoint>(
    bases: &[A],
    scalars: &[A::Scalar],
    num_chunks: usize,
    c: usize,
) -> A::Projective {
    let n = bases.len();
    let num_windows = (A::Scalar::MODULUS_BITS as usize + 1).div_ceil(c);

    if num_chunks <= 1 {
        return combine_windows(&chunk_window_sums(bases, scalars, c, num_windows), c);
    }

    let chunk_len = n.div_ceil(num_chunks);
    // Workers are fresh threads, so the caller's cancellation check (if
    // any) is re-installed in each; handles are joined explicitly and
    // panic payloads re-raised intact so a `cancel::Cancelled` marker
    // thrown mid-window reaches the pool's catch site undisturbed.
    let cancel_check = cancel::current();
    let mut partials: Vec<Vec<A::Projective>> = Vec::with_capacity(num_chunks);
    thread::scope(|s| {
        let handles: Vec<_> = bases
            .chunks(chunk_len)
            .zip(scalars.chunks(chunk_len))
            .map(|(b, sc)| {
                let cancel_check = cancel_check.clone();
                s.spawn(move |_| {
                    let _guard = cancel_check.map(cancel::install);
                    chunk_window_sums(b, sc, c, num_windows)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => partials.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    })
    .expect("msm scope failed");

    let mut window_sums = vec![A::Projective::identity(); num_windows];
    for part in &partials {
        for (sum, p) in window_sums.iter_mut().zip(part.iter()) {
            *sum = sum.add(p);
        }
    }
    combine_windows(&window_sums, c)
}

/// High bit of a pair code: the point enters its bucket negated.
const SIGN_BIT: u32 = 1 << 31;

/// Per-chunk work: decompose the chunk's scalars into signed digits once
/// (column-major, so each window scans a contiguous slice), then accumulate
/// every window's buckets batch-affine and collapse each window to a single
/// partial sum.
///
/// Pending bucket additions travel through the scheduler as compact
/// `(bucket, point-index | sign)` codes — 8 bytes instead of a full affine
/// point — so deferring conflicted additions across rounds moves almost no
/// memory; the point itself is fetched from `bases` exactly once, when the
/// addition is actually scheduled.
fn chunk_window_sums<A: AffinePoint>(
    bases: &[A],
    scalars: &[A::Scalar],
    c: usize,
    num_windows: usize,
) -> Vec<A::Projective> {
    let n = bases.len();
    let half = 1usize << (c - 1);
    let mut digits = vec![0i32; n * num_windows];
    let mut row = vec![0i32; num_windows];
    for (i, s) in scalars.iter().enumerate() {
        if bases[i].is_identity() {
            continue; // leave the digit column zero: identity adds nothing
        }
        signed_digits(&s.to_canonical(), c, &mut row);
        for (w, &d) in row.iter().enumerate() {
            digits[w * n + i] = d;
        }
    }

    let mut acc = BatchAffineBuckets::<A>::new(half);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut out = Vec::with_capacity(num_windows);
    for w in 0..num_windows {
        // One cooperative cancellation point per window (~20-90 per MSM):
        // granular enough that a deadline interrupts a multi-second prove
        // mid-kernel, coarse enough to be free when nothing is installed.
        cancel::checkpoint();
        pairs.clear();
        for (i, &d) in digits[w * n..(w + 1) * n].iter().enumerate() {
            match d.cmp(&0) {
                core::cmp::Ordering::Greater => pairs.push((d as u32 - 1, i as u32)),
                core::cmp::Ordering::Less => pairs.push(((-d) as u32 - 1, i as u32 | SIGN_BIT)),
                core::cmp::Ordering::Equal => {}
            }
        }
        acc.accumulate(&mut pairs, bases);
        out.push(acc.window_sum_and_reset());
    }
    out
}

/// Decodes a scheduler pair code back into the (possibly negated) point.
#[inline]
fn resolve<A: AffinePoint>(bases: &[A], code: u32) -> A {
    let base = &bases[(code & !SIGN_BIT) as usize];
    if code & SIGN_BIT != 0 {
        base.neg_point()
    } else {
        *base
    }
}

/// Affine buckets with batched-inversion addition.
///
/// Buckets are plain affine points (`identity` marks an empty bucket). Each
/// scheduling round picks at most one pending addition per bucket, computes
/// all the addition-slope denominators, inverts them together with one
/// [`batch_inverse`] call, and completes every addition with a couple of
/// multiplications. Conflicting additions are deferred to the next round;
/// once too few independent additions remain for batching to pay off (a
/// pathological digit distribution, e.g. thousands of identical scalars),
/// the tail is flushed through ordinary projective mixed additions into a
/// lazily-allocated overflow table, so the worst case degrades to the seed
/// algorithm's cost instead of one inversion per addition.
struct BatchAffineBuckets<A: AffinePoint> {
    buckets: Vec<A>,
    overflow: Option<Vec<A::Projective>>,
    /// Round stamp per bucket (avoids clearing a bitset every round).
    stamp: Vec<u32>,
    round: u32,
    jobs: Vec<(u32, A)>,
    denoms: Vec<A::Base>,
}

/// Below this many independent additions per round, batching no longer
/// amortises the inversion; flush the remainder projectively.
const MIN_BATCH: usize = 16;

impl<A: AffinePoint> BatchAffineBuckets<A> {
    fn new(num_buckets: usize) -> Self {
        BatchAffineBuckets {
            buckets: vec![A::identity(); num_buckets],
            overflow: None,
            stamp: vec![0; num_buckets],
            round: 0,
            jobs: Vec::new(),
            denoms: Vec::new(),
        }
    }

    /// Adds every `(bucket, code)` pair into the buckets; `pending` is
    /// drained. Referenced points must not be the identity.
    ///
    /// Streaming scheduler: each round first replays the retry list, then
    /// consumes up to half-a-bucket-table's worth of fresh pairs (so the
    /// expected conflict rate stays low — streaming to bucket saturation
    /// would defer most of the tail), scheduling at most one addition per
    /// bucket per round via the stamps. Conflicting pairs go to the retry
    /// list and get first pick next round, so each pair is visited O(1)
    /// times amortised and the scheduler stays linear even when points
    /// vastly outnumber buckets. If the retry list outgrows the bucket
    /// count (a degenerate digit distribution, e.g. thousands of identical
    /// scalars), it is flushed through ordinary projective additions.
    fn accumulate(&mut self, pending: &mut Vec<(u32, u32)>, bases: &[A]) {
        let num_buckets = self.buckets.len();
        let quota = (num_buckets / 2).clamp(MIN_BATCH, 1024);
        let retry_cap = num_buckets.max(4 * MIN_BATCH);
        let mut retry: Vec<(u32, u32)> = Vec::new();
        let mut next: Vec<(u32, u32)> = Vec::new();
        let mut i = 0;
        while i < pending.len() || !retry.is_empty() {
            self.round += 1;
            self.jobs.clear();
            self.denoms.clear();
            next.clear();
            for &(b, code) in &retry {
                if self.stamp[b as usize] == self.round {
                    next.push((b, code));
                } else {
                    self.stamp[b as usize] = self.round;
                    self.schedule(b, resolve(bases, code));
                }
            }
            for &(b, code) in pending.iter().skip(i).take(quota) {
                if self.stamp[b as usize] == self.round {
                    next.push((b, code));
                } else {
                    self.stamp[b as usize] = self.round;
                    self.schedule(b, resolve(bases, code));
                }
            }
            i += quota.min(pending.len() - i);
            self.apply_batch();
            core::mem::swap(&mut retry, &mut next);
            if retry.len() > retry_cap {
                self.flush_projective(&mut retry, bases);
            }
        }
        pending.clear();
    }

    /// Phase A of a round: either resolve the addition immediately (empty
    /// bucket, or cancellation to the identity) or queue it with its slope
    /// denominator for the batched inversion.
    fn schedule(&mut self, b: u32, p: A) {
        let bucket = &mut self.buckets[b as usize];
        if bucket.is_identity() {
            *bucket = p;
            return;
        }
        let (x1, y1) = bucket.xy().expect("non-identity bucket");
        let (x2, y2) = p.xy().expect("non-identity point");
        if x1 == x2 {
            if y1 == y2 && !y1.is_zero() {
                // Doubling: slope = (3*x1^2 + a) / (2*y1).
                self.denoms.push(y1.double());
                self.jobs.push((b, p));
            } else {
                // Opposite points (or a 2-torsion point): sum is identity.
                *bucket = A::identity();
            }
        } else {
            self.denoms.push(x2 - x1);
            self.jobs.push((b, p));
        }
    }

    /// Phase B: one batched inversion, then finish every queued addition
    /// with the affine chord/tangent formulas.
    fn apply_batch(&mut self) {
        batch_inverse(&mut self.denoms);
        for (&(b, p), inv) in self.jobs.iter().zip(self.denoms.iter()) {
            let bucket = &mut self.buckets[b as usize];
            let (x1, y1) = bucket.xy().expect("job bucket is non-identity");
            let (x2, y2) = p.xy().expect("job point is non-identity");
            let lambda = if x1 == x2 {
                let xx = x1.square();
                (xx.double() + xx + A::coeff_a()) * *inv
            } else {
                (y2 - y1) * *inv
            };
            let x3 = lambda.square() - x1 - x2;
            let y3 = lambda * (x1 - x3) - y1;
            *bucket = A::from_xy_unchecked(x3, y3);
        }
    }

    /// Tail path for conflict-heavy digit distributions: ordinary mixed
    /// projective additions into an overflow table.
    fn flush_projective(&mut self, pending: &mut Vec<(u32, u32)>, bases: &[A]) {
        let overflow = self
            .overflow
            .get_or_insert_with(|| vec![A::Projective::identity(); self.buckets.len()]);
        for (b, code) in pending.drain(..) {
            let p = resolve(bases, code);
            let idx = b as usize;
            let mut t = overflow[idx];
            if !self.buckets[idx].is_identity() {
                t = t.add_affine(&self.buckets[idx]);
                self.buckets[idx] = A::identity();
            }
            overflow[idx] = t.add_affine(&p);
        }
    }

    /// The window's `sum_k k * bucket_k` via the running-sum trick, leaving
    /// the accumulator empty for the next window.
    fn window_sum_and_reset(&mut self) -> A::Projective {
        let mut running = A::Projective::identity();
        let mut acc = A::Projective::identity();
        for idx in (0..self.buckets.len()).rev() {
            if let Some(ov) = &mut self.overflow {
                if !ov[idx].is_identity() {
                    running = running.add(&ov[idx]);
                    ov[idx] = A::Projective::identity();
                }
            }
            if !self.buckets[idx].is_identity() {
                running = running.add_affine(&self.buckets[idx]);
                self.buckets[idx] = A::identity();
            }
            acc = acc.add(&running);
        }
        acc
    }
}

/// Window width for the unsigned serial/window-parallel drivers (the seed
/// heuristic).
fn unsigned_window_size(n: usize) -> usize {
    match n {
        0..=31 => 3,
        32..=255 => 5,
        256..=4095 => 8,
        4096..=65535 => 11,
        65536..=1048575 => 14,
        _ => 16,
    }
}

/// Window width for the signed chunk-parallel driver, chosen by a small
/// cost model in field-multiplication units: each window costs `n` digit
/// additions — a batch-affine addition is ~6 muls plus a share of one
/// batched inversion (~512 muls spread over up to `half/2` additions per
/// round, so narrow windows amortise it poorly) — plus, per chunk, a
/// projective running sum over the `2^(c-1)` buckets at ~32 muls per
/// bucket. Splitting points across more chunks pushes the optimum towards
/// narrower windows; weak inversion amortisation pushes it wider.
pub(crate) fn signed_window_size(n: usize, num_chunks: usize) -> usize {
    (3..=15usize)
        .min_by_key(|&c| {
            let windows = 256usize.div_ceil(c);
            let half = 1usize << (c - 1);
            windows * (n * (6 * half + 512) / half + 32 * num_chunks * half)
        })
        .expect("non-empty window range")
}

/// Reads `width` bits starting at bit `start` (little-endian); bits past
/// the 256-bit representation read as zero.
fn extract_window(canon: &[u64; 4], start: usize, width: usize) -> u64 {
    let limb = start / 64;
    if limb >= 4 {
        return 0;
    }
    let shift = start % 64;
    let mut v = canon[limb] >> shift;
    if shift + width > 64 && limb + 1 < 4 {
        v |= canon[limb + 1] << (64 - shift);
    }
    v & ((1u64 << width) - 1)
}

/// Decomposes a canonical scalar into `out.len()` signed base-`2^c` digits
/// in `(-2^(c-1), 2^(c-1)]` with `sum_w digit_w * 2^(c*w)` equal to the
/// scalar. The caller sizes `out` to `ceil((MODULUS_BITS + 1) / c)` windows
/// so the final carry always lands inside the top window.
fn signed_digits(canon: &[u64; 4], c: usize, out: &mut [i32]) {
    let half = 1i64 << (c - 1);
    let full = 1i64 << c;
    let mut carry = 0i64;
    for (w, slot) in out.iter_mut().enumerate() {
        let raw = extract_window(canon, w * c, c) as i64 + carry;
        if raw > half {
            *slot = (raw - full) as i32;
            carry = 1;
        } else {
            *slot = raw as i32;
            carry = 0;
        }
    }
    debug_assert_eq!(carry, 0, "signed-digit carry escaped the top window");
}

fn unsigned_window_sum<A: AffinePoint>(
    bases: &[A],
    canon: &[[u64; 4]],
    w_start: usize,
    c: usize,
) -> A::Projective {
    let mut buckets = vec![A::Projective::identity(); (1 << c) - 1];
    for (base, scalar) in bases.iter().zip(canon.iter()) {
        let idx = extract_window(scalar, w_start, c) as usize;
        if idx != 0 {
            buckets[idx - 1] = buckets[idx - 1].add_affine(base);
        }
    }
    // running-sum trick: sum_k k * bucket_k
    let mut running = A::Projective::identity();
    let mut acc = A::Projective::identity();
    for b in buckets.iter().rev() {
        running = running.add(b);
        acc = acc.add(&running);
    }
    acc
}

fn combine_windows<P: CurveGroup>(window_sums: &[P], c: usize) -> P {
    let mut total = P::identity();
    for w in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total = total.add(w);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::{G1Affine, G1Projective};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::{Field, Fr};

    fn naive_msm(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
        bases
            .iter()
            .zip(scalars.iter())
            .map(|(b, s)| b.to_projective().mul_scalar(s))
            .fold(G1Projective::identity(), |a, b| a + b)
    }

    fn random_bases(n: usize, rng: &mut StdRng) -> Vec<G1Affine> {
        // Derive the points cheaply from a few random ones so large-n tests
        // stay fast; distinctness is not required for correctness.
        let seedlings: Vec<G1Projective> = (0..8).map(|_| G1Projective::random(rng)).collect();
        let mut cur = seedlings[0];
        (0..n)
            .map(|i| {
                cur = cur.add(&seedlings[i % 8]);
                CurveGroup::to_affine(&cur)
            })
            .collect()
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm::<G1Affine>(&[], &[]).is_identity());
        assert!(msm_serial::<G1Affine>(&[], &[]).is_identity());
        assert!(msm_window_parallel::<G1Affine>(&[], &[]).is_identity());
    }

    #[test]
    fn msm_matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 17, 33, 65] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let expect = naive_msm(&bases, &scalars);
            assert_eq!(msm_serial(&bases, &scalars), expect, "serial n={n}");
            assert_eq!(msm_window_parallel(&bases, &scalars), expect, "wp n={n}");
            assert_eq!(msm(&bases, &scalars), expect, "fast n={n}");
        }
    }

    #[test]
    fn msm_matches_naive_with_edge_scalars() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let bases = random_bases(n, &mut rng);
        // zeros, ones, small values, -1, +/- window-boundary values and the
        // identity point: all the bucket/digit edge cases at once.
        let scalars: Vec<Fr> = (0..n)
            .map(|i| match i % 8 {
                0 => Fr::zero(),
                1 => Fr::one(),
                2 => Fr::from_u64(i as u64),
                3 => -Fr::one(),
                4 => Fr::from_u64(1 << 7),        // +half for c=8
                5 => -Fr::from_u64((1 << 7) + 1), // just past -half
                6 => Fr::from_u64((1 << 8) - 1),
                _ => Fr::random(&mut rng),
            })
            .collect();
        let mut bases = bases;
        bases[7] = G1Affine::identity();
        let expect = naive_msm(&bases, &scalars);
        assert_eq!(msm(&bases, &scalars), expect);
        assert_eq!(msm_serial(&bases, &scalars), expect);
        assert_eq!(msm_with_chunks(&bases, &scalars, 4), expect);
    }

    #[test]
    fn msm_identical_scalars_hit_the_flush_path() {
        // Every point lands in the same bucket of every window, so the
        // batch-affine scheduler defers almost everything and must fall back
        // to the projective flush without losing points.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 150;
        let bases = random_bases(n, &mut rng);
        for s in [Fr::one(), Fr::from_u64(5), -Fr::from_u64(3)] {
            let scalars = vec![s; n];
            assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
            assert_eq!(
                msm_with_chunks(&bases, &scalars, 3),
                naive_msm(&bases, &scalars)
            );
        }
    }

    #[test]
    fn chunked_msm_matches_unchunked() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 513; // deliberately not a multiple of the chunk count
        let bases = random_bases(n, &mut rng);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let expect = naive_msm(&bases, &scalars);
        for chunks in [1usize, 2, 3, 8] {
            assert_eq!(
                msm_with_chunks(&bases, &scalars, chunks),
                expect,
                "{chunks}"
            );
        }
    }

    #[test]
    fn signed_digits_reconstruct_scalar() {
        let mut rng = StdRng::seed_from_u64(5);
        for c in [3usize, 7, 8, 13, 15] {
            let num_windows = (Fr::MODULUS_BITS as usize + 1).div_ceil(c);
            let mut digits = vec![0i32; num_windows];
            for case in 0..20 {
                let s = match case {
                    0 => Fr::zero(),
                    1 => Fr::one(),
                    2 => -Fr::one(),
                    3 => Fr::from_u64((1 << c) as u64),
                    _ => Fr::random(&mut rng),
                };
                signed_digits(&s.to_canonical(), c, &mut digits);
                let mut acc = Fr::zero();
                let radix = Fr::from_u64(1u64 << c);
                for &d in digits.iter().rev() {
                    acc = acc * radix + Fr::from_i64(d as i64);
                }
                assert_eq!(acc, s, "c={c} case={case}");
                let half = 1i64 << (c - 1);
                assert!(digits
                    .iter()
                    .all(|&d| (d as i64) > -half && (d as i64) <= half));
            }
        }
    }

    #[test]
    fn extract_window_crosses_limbs() {
        let canon = [u64::MAX, 0b1011, 0, 0];
        // 8-bit window starting at bit 60: low 4 bits are 1111 (from limb 0),
        // upper 4 bits are 1011 (from limb 1) -> 0b1011_1111
        assert_eq!(extract_window(&canon, 60, 8), 0b1011_1111);
        // Reads past the representation are zero.
        assert_eq!(extract_window(&canon, 256, 8), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_msm_equals_naive(raw in prop::collection::vec(0u64..u64::MAX, 1..48)) {
            let seed = raw.iter().fold(0u64, |a, v| a.wrapping_add(*v)) ^ raw.len() as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let bases = random_bases(raw.len(), &mut rng);
            // Mix raw u64 values with structured negatives of them.
            let scalars: Vec<Fr> = raw
                .iter()
                .enumerate()
                .map(|(i, v)| if i % 3 == 0 { -Fr::from_u64(*v) } else { Fr::from_u64(*v) })
                .collect();
            let expect = naive_msm(&bases, &scalars);
            prop_assert_eq!(msm(&bases, &scalars), expect);
            prop_assert_eq!(msm_serial(&bases, &scalars), expect);
            prop_assert_eq!(msm_window_parallel(&bases, &scalars), expect);
            prop_assert_eq!(msm_with_chunks(&bases, &scalars, 2), expect);
        }
    }
}
