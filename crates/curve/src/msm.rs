//! Multi-scalar multiplication (Pippenger's bucket method).
//!
//! The dominant cost of the Groth16 prover is three large MSMs over the CRS;
//! this module provides a serial bucketed implementation plus a
//! crossbeam-parallel driver that splits the windows across worker threads.

use crossbeam::thread;
use zkvc_ff::{Fr, PrimeField};

use crate::g1::{G1Affine, G1Projective};

/// Computes `sum_i scalars[i] * bases[i]` with Pippenger's algorithm,
/// single-threaded.
///
/// # Panics
/// Panics if `bases.len() != scalars.len()`.
pub fn msm_serial(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(bases.len(), scalars.len(), "bases/scalars length mismatch");
    if bases.is_empty() {
        return G1Projective::identity();
    }
    let c = window_size(bases.len());
    let num_bits = Fr::MODULUS_BITS as usize;
    let windows: Vec<usize> = (0..num_bits).step_by(c).collect();
    let canon: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical()).collect();

    let window_sums: Vec<G1Projective> = windows
        .iter()
        .map(|&w_start| window_sum(bases, &canon, w_start, c))
        .collect();

    combine_windows(&window_sums, c)
}

/// Computes `sum_i scalars[i] * bases[i]`, splitting windows across threads.
///
/// # Panics
/// Panics if `bases.len() != scalars.len()`.
pub fn msm(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(bases.len(), scalars.len(), "bases/scalars length mismatch");
    if bases.is_empty() {
        return G1Projective::identity();
    }
    if bases.len() < 64 {
        return msm_serial(bases, scalars);
    }
    let c = window_size(bases.len());
    let num_bits = Fr::MODULUS_BITS as usize;
    let windows: Vec<usize> = (0..num_bits).step_by(c).collect();
    let canon: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical()).collect();
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(windows.len());

    let mut window_sums = vec![G1Projective::identity(); windows.len()];
    let chunk = windows.len().div_ceil(n_threads);
    thread::scope(|s| {
        for (out_chunk, win_chunk) in window_sums.chunks_mut(chunk).zip(windows.chunks(chunk)) {
            let canon = &canon;
            s.spawn(move |_| {
                for (out, &w_start) in out_chunk.iter_mut().zip(win_chunk.iter()) {
                    *out = window_sum(bases, canon, w_start, c);
                }
            });
        }
    })
    .expect("msm worker thread panicked");

    combine_windows(&window_sums, c)
}

fn window_size(n: usize) -> usize {
    match n {
        0..=31 => 3,
        32..=255 => 5,
        256..=4095 => 8,
        4096..=65535 => 11,
        65536..=1048575 => 14,
        _ => 16,
    }
}

fn extract_window(canon: &[u64; 4], start: usize, width: usize) -> usize {
    // Read `width` bits starting at bit `start` (little-endian).
    let limb = start / 64;
    let shift = start % 64;
    let mut v = canon[limb] >> shift;
    if shift + width > 64 && limb + 1 < 4 {
        v |= canon[limb + 1] << (64 - shift);
    }
    (v & ((1u64 << width) - 1)) as usize
}

fn window_sum(bases: &[G1Affine], canon: &[[u64; 4]], w_start: usize, c: usize) -> G1Projective {
    let mut buckets = vec![G1Projective::identity(); (1 << c) - 1];
    for (base, scalar) in bases.iter().zip(canon.iter()) {
        let idx = extract_window(scalar, w_start, c);
        if idx != 0 {
            buckets[idx - 1] = buckets[idx - 1].add_affine(base);
        }
    }
    // running-sum trick: sum_k k * bucket_k
    let mut running = G1Projective::identity();
    let mut acc = G1Projective::identity();
    for b in buckets.iter().rev() {
        running += *b;
        acc += running;
    }
    acc
}

fn combine_windows(window_sums: &[G1Projective], c: usize) -> G1Projective {
    let mut total = G1Projective::identity();
    for w in window_sums.iter().rev() {
        for _ in 0..c {
            total = total.double();
        }
        total += *w;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::Field;

    fn naive_msm(bases: &[G1Affine], scalars: &[Fr]) -> G1Projective {
        bases
            .iter()
            .zip(scalars.iter())
            .map(|(b, s)| b.to_projective().mul_scalar(s))
            .sum()
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm(&[], &[]).is_identity());
        assert!(msm_serial(&[], &[]).is_identity());
    }

    #[test]
    fn msm_matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 17, 33] {
            let bases: Vec<G1Affine> = (0..n)
                .map(|_| G1Projective::random(&mut rng).to_affine())
                .collect();
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            assert_eq!(msm_serial(&bases, &scalars), naive_msm(&bases, &scalars));
            assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
        }
    }

    #[test]
    fn msm_matches_naive_larger_with_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let bases: Vec<G1Affine> = (0..n)
            .map(|_| G1Projective::random(&mut rng).to_affine())
            .collect();
        // include zeros, ones and small scalars to hit bucket edge cases
        let scalars: Vec<Fr> = (0..n)
            .map(|i| match i % 5 {
                0 => Fr::zero(),
                1 => Fr::one(),
                2 => Fr::from_u64(i as u64),
                _ => Fr::random(&mut rng),
            })
            .collect();
        assert_eq!(msm(&bases, &scalars), naive_msm(&bases, &scalars));
    }

    #[test]
    fn extract_window_crosses_limbs() {
        let canon = [u64::MAX, 0b1011, 0, 0];
        // 8-bit window starting at bit 60: low 4 bits are 1111 (from limb 0),
        // upper 4 bits are 1011 (from limb 1) -> 0b1011_1111
        assert_eq!(extract_window(&canon, 60, 8), 0b1011_1111);
    }
}
