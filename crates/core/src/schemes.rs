//! The qualitative comparison of verifiable-DNN schemes (Table I of the
//! paper), as structured data so the `table1` harness can print it and the
//! properties of the schemes implemented in this workspace can be asserted
//! in tests.

/// A row of Table I: which properties a scheme provides.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchemeFeatures {
    /// Scheme name as printed in the table.
    pub name: &'static str,
    /// Zero-knowledge (hides the model weights).
    pub zero_knowledge: bool,
    /// Non-interactive (single message from prover to verifier).
    pub non_interactive: bool,
    /// Constant proof size (independent of model size).
    pub constant_proof: bool,
    /// Works without a trusted setup.
    pub no_trusted_setup: bool,
    /// Evaluated on Transformer architectures.
    pub transformers: bool,
    /// Has an efficient matrix-multiplication encoding.
    pub efficient_matmult: bool,
    /// Co-designs the model architecture with the ZKP cost model.
    pub zkml_codesign: bool,
    /// Whether this workspace implements the scheme (`true`) or only echoes
    /// the paper's characterisation (`false`).
    pub implemented_here: bool,
}

/// The rows of Table I, in the paper's order.
pub const TABLE_I: [SchemeFeatures; 9] = [
    SchemeFeatures {
        name: "SafetyNets",
        zero_knowledge: false,
        non_interactive: false,
        constant_proof: false,
        no_trusted_setup: true,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "zkCNN",
        zero_knowledge: true,
        non_interactive: false,
        constant_proof: false,
        no_trusted_setup: true,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: true, // via the zkvc-interactive sum-check baseline
    },
    SchemeFeatures {
        name: "Keuffer's",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "vCNN",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "VeriML",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "ZEN",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "zkML",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: false,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "pvCNN",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: false,
        transformers: false,
        efficient_matmult: false,
        zkml_codesign: false,
        implemented_here: false,
    },
    SchemeFeatures {
        name: "zkVC",
        zero_knowledge: true,
        non_interactive: true,
        constant_proof: true,
        no_trusted_setup: true, // with the Spartan backend
        transformers: true,
        efficient_matmult: true,
        zkml_codesign: true,
        implemented_here: true,
    },
];

/// Renders the feature matrix as an ASCII table (used by the `table1`
/// harness binary).
pub fn render_table_i() -> String {
    let mut out = String::new();
    out.push_str(
        "Scheme      | zk | NonInter | ConstProof | NoTrustedSetup | Transformers | EffMatMult | Codesign | InRepo\n",
    );
    out.push_str(
        "------------+----+----------+------------+----------------+--------------+------------+----------+-------\n",
    );
    let mark = |b: bool| if b { "yes" } else { " - " };
    for row in TABLE_I {
        out.push_str(&format!(
            "{:<12}| {} | {:<8} | {:<10} | {:<14} | {:<12} | {:<10} | {:<8} | {}\n",
            row.name,
            mark(row.zero_knowledge),
            mark(row.non_interactive),
            mark(row.constant_proof),
            mark(row.no_trusted_setup),
            mark(row.transformers),
            mark(row.efficient_matmult),
            mark(row.zkml_codesign),
            mark(row.implemented_here),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_highlights() {
        let zkvc = TABLE_I.last().unwrap();
        assert_eq!(zkvc.name, "zkVC");
        assert!(zkvc.zero_knowledge && zkvc.non_interactive && zkvc.efficient_matmult);
        assert!(zkvc.transformers && zkvc.zkml_codesign);
        // Only SafetyNets lacks zero-knowledge.
        assert_eq!(TABLE_I.iter().filter(|s| !s.zero_knowledge).count(), 1);
        // Interactive schemes: SafetyNets and zkCNN.
        assert_eq!(TABLE_I.iter().filter(|s| !s.non_interactive).count(), 2);
    }

    #[test]
    fn render_has_one_line_per_scheme() {
        let s = render_table_i();
        assert_eq!(s.lines().count(), 2 + TABLE_I.len());
        assert!(s.contains("zkVC"));
    }
}
