//! A uniform prove/verify interface over the two ZKP backends used in the
//! paper: Groth16 (`zkVC-G`) and the Spartan-style transparent SNARK
//! (`zkVC-S`).
//!
//! The [`Backend::prove`] path also records the per-phase timings and sizes
//! that the benchmark harnesses print for Figure 3, Figure 6 and Table II.

use std::time::{Duration, Instant};

use rand::Rng;
use zkvc_ff::Fr;
use zkvc_groth16 as groth16;
use zkvc_r1cs::ConstraintSystem;
use zkvc_spartan::{SpartanProof, SpartanProver, SpartanVerifier};

use crate::matmul::MatMulJob;

/// The proof system used underneath a zkVC circuit.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Groth16 over the pairing curve — constant proof size and
    /// verification, per-circuit trusted setup (`zkVC-G`).
    Groth16,
    /// The Spartan-style transparent SNARK — no trusted setup,
    /// logarithmic-size proofs (`zkVC-S`).
    Spartan,
}

impl Backend {
    /// Both backends, in the order used by the harnesses.
    pub const ALL: [Backend; 2] = [Backend::Groth16, Backend::Spartan];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Groth16 => "groth16",
            Backend::Spartan => "spartan",
        }
    }
}

/// Timing and size measurements collected while producing a proof.
#[derive(Clone, Debug)]
pub struct ProveMetrics {
    /// Backend used.
    pub backend: Backend,
    /// Time spent in setup / preprocessing (CRS generation for Groth16,
    /// transparent preprocessing for Spartan).
    pub setup_time: Duration,
    /// Time spent producing the proof.
    pub prove_time: Duration,
    /// Serialised proof size in bytes.
    pub proof_size_bytes: usize,
    /// Number of R1CS constraints proved.
    pub num_constraints: usize,
    /// Number of R1CS variables.
    pub num_variables: usize,
}

/// The proof plus everything needed to verify it.
#[derive(Clone, Debug)]
pub enum ProofData {
    /// A Groth16 proof with its verification key.
    Groth16 {
        /// Verification key produced by the trusted setup.
        vk: groth16::VerifyingKey,
        /// The proof.
        proof: groth16::Proof,
    },
    /// A Spartan-style proof (the verifier re-derives its preprocessing from
    /// the circuit structure).
    Spartan {
        /// The proof.
        proof: Box<SpartanProof>,
    },
}

/// The output of [`Backend::prove`]: the proof data, the public inputs it
/// binds, and the collected metrics.
#[derive(Clone, Debug)]
pub struct ProofArtifacts {
    /// The proof and verification material.
    pub data: ProofData,
    /// The public inputs the proof commits to.
    pub public_inputs: Vec<Fr>,
    /// Prover-side measurements.
    pub metrics: ProveMetrics,
}

impl Backend {
    /// Runs setup (if any) and proves the given matmul job, collecting
    /// metrics along the way.
    pub fn prove<R: Rng + ?Sized>(&self, job: &MatMulJob, rng: &mut R) -> ProofArtifacts {
        self.prove_cs(&job.cs, rng)
    }

    /// Proves an arbitrary constraint system (used by `zkvc-nn` for whole
    /// model layers).
    pub fn prove_cs<R: Rng + ?Sized>(
        &self,
        cs: &ConstraintSystem<Fr>,
        rng: &mut R,
    ) -> ProofArtifacts {
        let public_inputs = cs.instance_assignment().to_vec();
        match self {
            Backend::Groth16 => {
                let t0 = Instant::now();
                let (pk, vk) = groth16::setup(cs, rng);
                let setup_time = t0.elapsed();
                let t1 = Instant::now();
                let proof = groth16::prove(&pk, cs, rng);
                let prove_time = t1.elapsed();
                let proof_size_bytes = proof.size_in_bytes();
                ProofArtifacts {
                    data: ProofData::Groth16 { vk, proof },
                    public_inputs,
                    metrics: ProveMetrics {
                        backend: *self,
                        setup_time,
                        prove_time,
                        proof_size_bytes,
                        num_constraints: cs.num_constraints(),
                        num_variables: cs.num_variables(),
                    },
                }
            }
            Backend::Spartan => {
                let t0 = Instant::now();
                let prover = SpartanProver::preprocess(cs);
                let setup_time = t0.elapsed();
                let t1 = Instant::now();
                let proof = prover.prove(cs, rng);
                let prove_time = t1.elapsed();
                let proof_size_bytes = proof.size_in_bytes();
                ProofArtifacts {
                    data: ProofData::Spartan {
                        proof: Box::new(proof),
                    },
                    public_inputs,
                    metrics: ProveMetrics {
                        backend: *self,
                        setup_time,
                        prove_time,
                        proof_size_bytes,
                        num_constraints: cs.num_constraints(),
                        num_variables: cs.num_variables(),
                    },
                }
            }
        }
    }

    /// Verifies the artifacts produced by [`Backend::prove`] for the same
    /// job.
    pub fn verify(&self, job: &MatMulJob, artifacts: &ProofArtifacts) -> bool {
        self.verify_cs(&job.cs, artifacts)
    }

    /// Verifies against an arbitrary constraint system structure, returning
    /// the verdict.
    pub fn verify_cs(&self, cs: &ConstraintSystem<Fr>, artifacts: &ProofArtifacts) -> bool {
        self.verify_cs_timed(cs, artifacts).0
    }

    /// Verifies and reports how long verification took (the "Verifier Time"
    /// panel of Fig. 6).
    pub fn verify_cs_timed(
        &self,
        cs: &ConstraintSystem<Fr>,
        artifacts: &ProofArtifacts,
    ) -> (bool, Duration) {
        let t0 = Instant::now();
        let ok = match (&artifacts.data, self) {
            (ProofData::Groth16 { vk, proof }, Backend::Groth16) => {
                groth16::verify(vk, &artifacts.public_inputs, proof)
            }
            (ProofData::Spartan { proof }, Backend::Spartan) => {
                let verifier = SpartanVerifier::preprocess(cs);
                verifier.verify(&artifacts.public_inputs, proof)
            }
            _ => false,
        };
        (ok, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{MatMulBuilder, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;

    fn job(strategy: Strategy) -> MatMulJob {
        let x = vec![vec![1i64, -2, 3], vec![4, 5, -6]];
        let w = vec![vec![7i64, 8], vec![-9, 10], vec![11, -12]];
        MatMulBuilder::new(2, 3, 2).strategy(strategy).build_integers(&x, &w)
    }

    #[test]
    fn groth16_backend_roundtrip_all_strategies() {
        let mut rng = StdRng::seed_from_u64(11);
        for strategy in Strategy::ALL {
            let j = job(strategy);
            let artifacts = Backend::Groth16.prove(&j, &mut rng);
            assert!(Backend::Groth16.verify(&j, &artifacts), "{strategy:?}");
            assert_eq!(artifacts.metrics.proof_size_bytes, 195);
            assert_eq!(artifacts.metrics.num_constraints, j.stats.num_constraints);
        }
    }

    #[test]
    fn spartan_backend_roundtrip_all_strategies() {
        let mut rng = StdRng::seed_from_u64(12);
        for strategy in Strategy::ALL {
            let j = job(strategy);
            let artifacts = Backend::Spartan.prove(&j, &mut rng);
            assert!(Backend::Spartan.verify(&j, &artifacts), "{strategy:?}");
            assert!(artifacts.metrics.proof_size_bytes > 0);
        }
    }

    #[test]
    fn cross_backend_verification_fails() {
        let mut rng = StdRng::seed_from_u64(13);
        let j = job(Strategy::CrpcPsq);
        let g = Backend::Groth16.prove(&j, &mut rng);
        assert!(!Backend::Spartan.verify(&j, &g));
    }

    #[test]
    fn tampered_public_inputs_rejected() {
        // Use a circuit with a real public input to check binding.
        let mut rng = StdRng::seed_from_u64(14);
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(144));
        let x = cs.alloc_witness(Fr::from_u64(12));
        cs.enforce(x.into(), x.into(), out.into());
        for backend in Backend::ALL {
            let mut artifacts = backend.prove_cs(&cs, &mut rng);
            assert!(backend.verify_cs(&cs, &artifacts), "{backend:?}");
            artifacts.public_inputs[0] = Fr::from_u64(143);
            assert!(!backend.verify_cs(&cs, &artifacts), "{backend:?}");
        }
    }

    #[test]
    fn metrics_are_populated() {
        let mut rng = StdRng::seed_from_u64(15);
        let j = job(Strategy::CrpcPsq);
        let artifacts = Backend::Spartan.prove(&j, &mut rng);
        assert!(artifacts.metrics.prove_time > Duration::ZERO);
        assert_eq!(artifacts.metrics.backend, Backend::Spartan);
        assert_eq!(artifacts.metrics.num_variables, j.stats.num_variables);
        let (ok, vt) = Backend::Spartan.verify_cs_timed(&j.cs, &artifacts);
        assert!(ok);
        assert!(vt > Duration::ZERO);
    }
}
