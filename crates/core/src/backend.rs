//! A uniform prove/verify interface over the two ZKP backends used in the
//! paper: Groth16 (`zkVC-G`) and the Spartan-style transparent SNARK
//! (`zkVC-S`).
//!
//! As of the circuit-generic API redesign the real proving logic lives in
//! the [`crate::api`] module behind the [`ProofSystem`] trait; [`Backend`]
//! remains as a `Copy` tag plus a thin dispatcher
//! ([`Backend::system`]) so existing call sites — and anything that wants a
//! hashable enum rather than a trait object — keep working unchanged.

use core::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

use rand::Rng;
use zkvc_ff::Fr;
use zkvc_groth16 as groth16;
use zkvc_r1cs::ConstraintSystem;
use zkvc_spartan::{SpartanProof, SpartanProver, SpartanVerifier};

use crate::api::{ProofSystem, RawCircuit, GROTH16, SPARTAN};
use crate::matmul::MatMulJob;

/// The proof system used underneath a zkVC circuit.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Groth16 over the pairing curve — constant proof size and
    /// verification, per-circuit trusted setup (`zkVC-G`).
    Groth16,
    /// The Spartan-style transparent SNARK — no trusted setup,
    /// logarithmic-size proofs (`zkVC-S`).
    Spartan,
}

impl Backend {
    /// Both backends, in the order used by the harnesses.
    pub const ALL: [Backend; 2] = [Backend::Groth16, Backend::Spartan];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Groth16 => "groth16",
            Backend::Spartan => "spartan",
        }
    }

    /// The [`ProofSystem`] implementation this tag dispatches to.
    pub fn system(&self) -> &'static dyn ProofSystem {
        match self {
            Backend::Groth16 => &GROTH16,
            Backend::Spartan => &SPARTAN,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a [`Backend`] or
/// [`Strategy`](crate::matmul::Strategy) token fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownTokenError {
    /// What was being parsed ("backend", "strategy").
    pub what: &'static str,
    /// The offending input token.
    pub token: String,
}

impl fmt::Display for UnknownTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} {:?}", self.what, self.token)
    }
}

impl std::error::Error for UnknownTokenError {}

impl FromStr for Backend {
    type Err = UnknownTokenError;

    /// Parses a backend token as used in job specs: `groth16` (alias `g`)
    /// or `spartan` (alias `s`), case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "groth16" | "g" => Ok(Backend::Groth16),
            "spartan" | "s" => Ok(Backend::Spartan),
            _ => Err(UnknownTokenError {
                what: "backend",
                token: s.to_string(),
            }),
        }
    }
}

/// Timing and size measurements collected while producing a proof.
#[derive(Clone, Debug)]
pub struct ProveMetrics {
    /// Backend used.
    pub backend: Backend,
    /// Time spent in setup / preprocessing (CRS generation for Groth16,
    /// transparent preprocessing for Spartan).
    pub setup_time: Duration,
    /// Time spent producing the proof.
    pub prove_time: Duration,
    /// Serialised proof size in bytes.
    pub proof_size_bytes: usize,
    /// Number of R1CS constraints proved.
    pub num_constraints: usize,
    /// Number of R1CS variables.
    pub num_variables: usize,
}

/// The proof plus everything needed to verify it.
// Variant sizes legitimately differ: a Groth16 vk embeds its gamma_abc
// vector while Spartan's proof is boxed; both are heap-dominated anyway.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ProofData {
    /// A Groth16 proof with its verification key.
    Groth16 {
        /// Verification key produced by the trusted setup.
        vk: groth16::VerifyingKey,
        /// The proof.
        proof: groth16::Proof,
    },
    /// A Spartan-style proof (the verifier re-derives its preprocessing from
    /// the circuit structure).
    Spartan {
        /// The proof.
        proof: Box<SpartanProof>,
    },
}

/// The output of [`ProofSystem::prove`]: the proof data, the public inputs
/// it binds, and the collected metrics.
#[derive(Clone, Debug)]
pub struct ProofArtifacts {
    /// The proof and verification material.
    pub data: ProofData,
    /// The public inputs the proof commits to.
    pub public_inputs: Vec<Fr>,
    /// Prover-side measurements.
    pub metrics: ProveMetrics,
}

/// Reusable prover-side key material for one circuit *shape*, produced by
/// [`ProofSystem::setup`]: the Groth16 CRS, or the Spartan preprocessed
/// instance. Computing this once and proving many statements against it is
/// what makes batch proving amortise (see `zkvc-runtime`'s `KeyCache`).
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ProverKey {
    /// Groth16 proving key (circuit-specific CRS).
    Groth16(groth16::ProvingKey),
    /// Spartan preprocessed prover state (transparent, no trusted setup).
    Spartan(SpartanProver),
}

impl ProverKey {
    /// The backend this key belongs to.
    pub fn backend(&self) -> Backend {
        match self {
            ProverKey::Groth16(_) => Backend::Groth16,
            ProverKey::Spartan(_) => Backend::Spartan,
        }
    }
}

/// Reusable verifier-side key material for one circuit shape, produced by
/// [`ProofSystem::setup`].
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum VerifierKey {
    /// Groth16 verification key.
    Groth16(groth16::VerifyingKey),
    /// Spartan preprocessed verifier state.
    Spartan(SpartanVerifier),
}

impl VerifierKey {
    /// The backend this key belongs to.
    pub fn backend(&self) -> Backend {
        match self {
            VerifierKey::Groth16(_) => Backend::Groth16,
            VerifierKey::Spartan(_) => Backend::Spartan,
        }
    }
}

impl Backend {
    /// Runs setup (if any) and proves the given matmul job, collecting
    /// metrics along the way.
    pub fn prove<R: Rng + ?Sized>(&self, job: &MatMulJob, rng: &mut R) -> ProofArtifacts {
        let mut rng = rng;
        self.system().prove_oneshot(job, &mut rng)
    }

    /// Runs the per-circuit-shape setup: CRS generation for Groth16,
    /// transparent preprocessing for Spartan.
    ///
    /// Only the constraint *structure* (and coefficient values) of `cs`
    /// matter; the assignment is ignored. The returned keys can prove and
    /// verify any number of statements for circuits with identical
    /// structure via [`Backend::prove_with_key`] /
    /// [`Backend::verify_with_key`].
    pub fn setup<R: Rng + ?Sized>(
        &self,
        cs: &ConstraintSystem<Fr>,
        rng: &mut R,
    ) -> (ProverKey, VerifierKey) {
        let mut rng = rng;
        self.system().setup(&RawCircuit::new(cs), &mut rng)
    }

    /// Proves the assignment held in `cs` against a key prepared by
    /// [`Backend::setup`] for the same circuit shape. The returned metrics
    /// report zero setup time: the key is assumed amortised across calls.
    ///
    /// # Panics
    /// Panics if the key belongs to the other backend, or (for Spartan) if
    /// the circuit shape differs from the preprocessed structure.
    pub fn prove_with_key<R: Rng + ?Sized>(
        &self,
        key: &ProverKey,
        cs: &ConstraintSystem<Fr>,
        rng: &mut R,
    ) -> ProofArtifacts {
        let mut rng = rng;
        self.system().prove(key, &RawCircuit::new(cs), &mut rng)
    }

    /// Verifies artifacts against a key prepared by [`Backend::setup`],
    /// avoiding the per-verification re-preprocessing that
    /// [`Backend::verify_cs`] performs for Spartan. Returns `false` on
    /// backend/key mismatch.
    pub fn verify_with_key(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool {
        self.system().verify(key, artifacts)
    }

    /// Proves an arbitrary constraint system (used by `zkvc-nn` for whole
    /// model layers): one-shot setup + prove, with the setup time recorded
    /// in the metrics.
    pub fn prove_cs<R: Rng + ?Sized>(
        &self,
        cs: &ConstraintSystem<Fr>,
        rng: &mut R,
    ) -> ProofArtifacts {
        let mut rng = rng;
        self.system().prove_oneshot(&RawCircuit::new(cs), &mut rng)
    }

    /// Verifies the artifacts produced by [`Backend::prove`] for the same
    /// job.
    pub fn verify(&self, job: &MatMulJob, artifacts: &ProofArtifacts) -> bool {
        self.system().verify_with_circuit(job, artifacts)
    }

    /// Verifies against an arbitrary constraint system structure, returning
    /// the verdict.
    pub fn verify_cs(&self, cs: &ConstraintSystem<Fr>, artifacts: &ProofArtifacts) -> bool {
        self.verify_cs_timed(cs, artifacts).0
    }

    /// Verifies and reports how long verification took (the "Verifier Time"
    /// panel of Fig. 6).
    pub fn verify_cs_timed(
        &self,
        cs: &ConstraintSystem<Fr>,
        artifacts: &ProofArtifacts,
    ) -> (bool, Duration) {
        let t0 = Instant::now();
        let ok = self
            .system()
            .verify_with_circuit(&RawCircuit::new(cs), artifacts);
        (ok, t0.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{MatMulBuilder, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::PrimeField;

    fn job(strategy: Strategy) -> MatMulJob {
        let x = vec![vec![1i64, -2, 3], vec![4, 5, -6]];
        let w = vec![vec![7i64, 8], vec![-9, 10], vec![11, -12]];
        MatMulBuilder::new(2, 3, 2)
            .strategy(strategy)
            .build_integers(&x, &w)
    }

    #[test]
    fn groth16_backend_roundtrip_all_strategies() {
        let mut rng = StdRng::seed_from_u64(11);
        for strategy in Strategy::ALL {
            let j = job(strategy);
            let artifacts = Backend::Groth16.prove(&j, &mut rng);
            assert!(Backend::Groth16.verify(&j, &artifacts), "{strategy:?}");
            assert_eq!(artifacts.metrics.proof_size_bytes, 195);
            assert_eq!(artifacts.metrics.num_constraints, j.stats.num_constraints);
        }
    }

    #[test]
    fn spartan_backend_roundtrip_all_strategies() {
        let mut rng = StdRng::seed_from_u64(12);
        for strategy in Strategy::ALL {
            let j = job(strategy);
            let artifacts = Backend::Spartan.prove(&j, &mut rng);
            assert!(Backend::Spartan.verify(&j, &artifacts), "{strategy:?}");
            assert!(artifacts.metrics.proof_size_bytes > 0);
        }
    }

    #[test]
    fn cross_backend_verification_fails() {
        let mut rng = StdRng::seed_from_u64(13);
        let j = job(Strategy::CrpcPsq);
        let g = Backend::Groth16.prove(&j, &mut rng);
        assert!(!Backend::Spartan.verify(&j, &g));
    }

    #[test]
    fn tampered_public_inputs_rejected() {
        // Use a circuit with a real public input to check binding.
        let mut rng = StdRng::seed_from_u64(14);
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(144));
        let x = cs.alloc_witness(Fr::from_u64(12));
        cs.enforce(x.into(), x.into(), out.into());
        for backend in Backend::ALL {
            let mut artifacts = backend.prove_cs(&cs, &mut rng);
            assert!(backend.verify_cs(&cs, &artifacts), "{backend:?}");
            artifacts.public_inputs[0] = Fr::from_u64(143);
            assert!(!backend.verify_cs(&cs, &artifacts), "{backend:?}");
        }
    }

    #[test]
    fn split_setup_prove_reuses_keys_across_statements() {
        // One setup, many proofs: the core amortisation contract the
        // runtime's KeyCache builds on. The two statements share a circuit
        // shape but carry different assignments.
        let mut rng = StdRng::seed_from_u64(21);
        let x1 = vec![vec![1i64, 2], vec![3, 4]];
        let x2 = vec![vec![5i64, 6], vec![7, 8]];
        let w = vec![vec![9i64, 1], vec![2, 3]];
        for backend in Backend::ALL {
            let build = |x: &Vec<Vec<i64>>| {
                MatMulBuilder::new(2, 2, 2)
                    .strategy(Strategy::Vanilla)
                    .build_integers(x, &w)
            };
            let j1 = build(&x1);
            let j2 = build(&x2);
            let (pk, vk) = backend.setup(&j1.cs, &mut rng);
            assert_eq!(pk.backend(), backend);
            assert_eq!(vk.backend(), backend);
            let a1 = backend.prove_with_key(&pk, &j1.cs, &mut rng);
            let a2 = backend.prove_with_key(&pk, &j2.cs, &mut rng);
            assert!(backend.verify_with_key(&vk, &a1), "{backend:?} stmt 1");
            assert!(backend.verify_with_key(&vk, &a2), "{backend:?} stmt 2");
            assert_eq!(a1.metrics.setup_time, Duration::ZERO);
            // The keyed verifier agrees with the re-preprocessing one.
            assert!(backend.verify_cs(&j2.cs, &a2));
        }
    }

    #[test]
    fn keyed_verification_binds_public_inputs() {
        // Matmul jobs carry no instance variables by default, so
        // public-input binding needs a circuit that actually has one.
        let mut rng = StdRng::seed_from_u64(24);
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(121));
        let x = cs.alloc_witness(Fr::from_u64(11));
        cs.enforce(x.into(), x.into(), out.into());
        for backend in Backend::ALL {
            let (pk, vk) = backend.setup(&cs, &mut rng);
            let mut artifacts = backend.prove_with_key(&pk, &cs, &mut rng);
            assert!(backend.verify_with_key(&vk, &artifacts), "{backend:?}");
            artifacts.public_inputs[0] = Fr::from_u64(120);
            assert!(
                !backend.verify_with_key(&vk, &artifacts),
                "{backend:?} accepted tampered public input"
            );
        }
    }

    #[test]
    fn mismatched_keys_are_rejected() {
        let mut rng = StdRng::seed_from_u64(22);
        let j = job(Strategy::CrpcPsq);
        let (_pk_g, vk_g) = Backend::Groth16.setup(&j.cs, &mut rng);
        let spartan_artifacts = Backend::Spartan.prove_cs(&j.cs, &mut rng);
        // Verifying Spartan artifacts with a Groth16 key is a mismatch, not
        // a panic.
        assert!(!Backend::Groth16.verify_with_key(&vk_g, &spartan_artifacts));
        assert!(!Backend::Spartan.verify_with_key(&vk_g, &spartan_artifacts));
    }

    #[test]
    #[should_panic(expected = "backend/key mismatch")]
    fn proving_with_wrong_key_panics() {
        let mut rng = StdRng::seed_from_u64(23);
        let j = job(Strategy::CrpcPsq);
        let (pk, _vk) = Backend::Spartan.setup(&j.cs, &mut rng);
        Backend::Groth16.prove_with_key(&pk, &j.cs, &mut rng);
    }

    #[test]
    fn metrics_are_populated() {
        let mut rng = StdRng::seed_from_u64(15);
        let j = job(Strategy::CrpcPsq);
        let artifacts = Backend::Spartan.prove(&j, &mut rng);
        assert!(artifacts.metrics.prove_time > Duration::ZERO);
        assert_eq!(artifacts.metrics.backend, Backend::Spartan);
        assert_eq!(artifacts.metrics.num_variables, j.stats.num_variables);
        let (ok, vt) = Backend::Spartan.verify_cs_timed(&j.cs, &artifacts);
        assert!(ok);
        assert!(vt > Duration::ZERO);
    }

    #[test]
    fn backend_parses_and_displays() {
        for backend in Backend::ALL {
            assert_eq!(backend.to_string().parse::<Backend>(), Ok(backend));
        }
        assert_eq!("g".parse::<Backend>(), Ok(Backend::Groth16));
        assert_eq!("S".parse::<Backend>(), Ok(Backend::Spartan));
        let err = "nope".parse::<Backend>().unwrap_err();
        assert_eq!(err.what, "backend");
        assert!(err.to_string().contains("nope"));
    }
}
