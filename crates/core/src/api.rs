//! The circuit-generic proving API: the [`Circuit`] and [`ProofSystem`]
//! traits that decouple *what* is proved from *how* it is proved.
//!
//! As of the compile-once / prove-many split, a [`Circuit`] is a *driver*:
//! its [`Circuit::synthesize`] emits the constraint structure (and,
//! when the sink carries values, the witness) into any
//! [`ConstraintSink`]. Running it against a [`ShapeBuilder`] yields a
//! [`CompiledShape`] — flat CSR matrices plus the canonical shape digest —
//! **without ever materialising a witness value**; running it against a
//! [`WitnessFiller`] yields only the flat
//! assignment for a shape compiled earlier. Setup consumes shapes, proving
//! consumes assignments, and a prove-many workload compiles each shape
//! exactly once.
//!
//! The two systems built in this workspace are [`Groth16System`] (`zkVC-G`)
//! and [`SpartanSystem`] (`zkVC-S`); the [`Backend`] enum remains as a thin
//! dispatcher over them for callers that want a `Copy` value instead of a
//! trait object.
//!
//! A circuit's **public outputs** are its instance assignment: the values a
//! proof *binds*. A circuit with no instance variables (e.g. a matmul with
//! X, W and Y all private) only commits to its shape — any honest proof for
//! the same shape verifies interchangeably. Exposing outputs as public
//! inputs (see `MatMulBuilder::public_outputs`) upgrades that to
//! statement-level binding: a proof replayed against different claimed
//! outputs fails verification.
//!
//! ```rust
//! use zkvc_core::api::{compile_shape, Circuit, ProofSystem};
//! use zkvc_core::matmul::{MatMulBuilder, Strategy};
//! use zkvc_core::Backend;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = vec![vec![1i64, 2], vec![3, 4]];
//! let w = vec![vec![5i64, 6], vec![7, 8]];
//! let job = MatMulBuilder::new(2, 2, 2)
//!     .strategy(Strategy::CrpcPsq)
//!     .public_outputs(true)
//!     .build_integers(&x, &w);
//!
//! // Pick a proof system at runtime; `job` is just a `Circuit`.
//! let system: &dyn ProofSystem = Backend::Spartan.system();
//! let (pk, vk) = system.setup(&job, &mut rng);
//! let artifacts = system.prove(&pk, &job, &mut rng);
//! assert!(system.verify(&vk, &artifacts));
//!
//! // The proof binds the public outputs: tampering with Y must fail.
//! let mut tampered = artifacts.clone();
//! tampered.public_inputs[0] += zkvc_ff::Fr::one();
//! # use zkvc_ff::Field;
//! assert!(!system.verify(&vk, &tampered));
//! ```

use std::sync::Arc;
use std::time::Instant;

use rand::RngCore;
use zkvc_ff::Fr;
use zkvc_groth16 as groth16;
use zkvc_r1cs::{
    replay, CompiledShape, ConstraintSink, ConstraintSystem, LinearCombination, ShapeBuilder,
    WitnessAssignment, WitnessFiller,
};
use zkvc_spartan::{SpartanProver, SpartanVerifier};

use crate::backend::{Backend, ProofArtifacts, ProofData, ProverKey, VerifierKey};

/// A statement plus (when asked for) its witness, as a synthesis driver.
///
/// `synthesize` must be **pass-oblivious**: it emits the same allocation
/// and constraint sequence whether or not the sink wants values, and only
/// computes witness data when it does (the `Option`-returning sink
/// evaluators make the skip natural). That contract is what lets
/// [`compile_shape`] run witness-free and [`generate_witness`] skip all
/// structural bookkeeping.
pub trait Circuit {
    /// Drives synthesis into the sink: structure always, values only when
    /// `sink.wants_values()`.
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>);

    /// Human-readable label for reports and diagnostics.
    fn name(&self) -> String {
        "r1cs".to_string()
    }

    /// The public outputs this statement binds — the circuit's instance
    /// assignment, in allocation order. Empty for circuits that keep every
    /// value private (shape-level binding only).
    ///
    /// The default runs a witness pass; implementors that cache their
    /// outputs should override it.
    fn public_outputs(&self) -> Vec<Fr> {
        let mut filler = WitnessFiller::new();
        self.synthesize(&mut filler);
        filler.finish().instance
    }

    /// A collision-resistant fingerprint of the circuit *structure* (not
    /// the assignment): the identity under which proving/verifying key
    /// material is reusable. The default compiles the shape — witness-free
    /// — and takes its digest; implementors holding a prebuilt
    /// [`ConstraintSystem`] may override with [`circuit_shape_digest`].
    fn shape_digest(&self) -> [u8; 32] {
        compile_shape(self).digest
    }

    /// The number of public outputs this circuit's *statement* exposes —
    /// what the static analyzer checks the compiled shape against. For a
    /// well-formed circuit this equals the instance count; a circuit that
    /// declares more than its shape allocates (a matmul compiled with its
    /// outputs left private) is flagged `unbound-public` by
    /// `CompiledShape::analyze`.
    ///
    /// The default counts [`Circuit::public_outputs`] (a witness pass);
    /// implementors that know their statement arity should override with
    /// the cheap answer.
    fn declared_publics(&self) -> usize {
        self.public_outputs().len()
    }
}

/// Runs the witness-free shape pass over a circuit, producing its
/// [`CompiledShape`]: CSR matrices plus the canonical digest. No witness
/// value is ever materialised.
pub fn compile_shape<C: Circuit + ?Sized>(circuit: &C) -> CompiledShape<Fr> {
    let mut builder = ShapeBuilder::new();
    circuit.synthesize(&mut builder);
    builder.finish()
}

/// Runs the witness pass over a circuit, producing only the flat
/// instance/witness assignment. No constraints are stored.
pub fn generate_witness<C: Circuit + ?Sized>(circuit: &C) -> WitnessAssignment<Fr> {
    let mut filler = WitnessFiller::new();
    circuit.synthesize(&mut filler);
    filler.finish()
}

/// [`generate_witness`] validated against an already-compiled shape:
/// panics if the circuit's structure diverged from the shape (a
/// pass-obliviousness bug in the circuit).
pub fn generate_witness_for<C: Circuit + ?Sized>(
    circuit: &C,
    shape: &CompiledShape<Fr>,
) -> WitnessAssignment<Fr> {
    let mut filler = WitnessFiller::new();
    circuit.synthesize(&mut filler);
    filler.finish_for(shape)
}

/// A raw constraint system viewed as a [`Circuit`], for callers that
/// synthesise R1CS directly instead of going through a builder. Synthesis
/// replays the stored system into the sink, so the legacy eager pipeline
/// and the two-pass pipeline produce identical shapes and digests.
#[derive(Clone, Debug)]
pub struct RawCircuit<'a> {
    cs: &'a ConstraintSystem<Fr>,
    label: &'a str,
}

impl<'a> RawCircuit<'a> {
    /// Wraps a constraint system with the default label.
    pub fn new(cs: &'a ConstraintSystem<Fr>) -> Self {
        RawCircuit { cs, label: "r1cs" }
    }

    /// Wraps a constraint system with a custom label.
    pub fn named(cs: &'a ConstraintSystem<Fr>, label: &'a str) -> Self {
        RawCircuit { cs, label }
    }

    /// The wrapped constraint system.
    pub fn constraint_system(&self) -> &ConstraintSystem<Fr> {
        self.cs
    }
}

impl Circuit for RawCircuit<'_> {
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
        replay(self.cs, sink);
    }

    fn name(&self) -> String {
        self.label.to_string()
    }

    fn public_outputs(&self) -> Vec<Fr> {
        self.cs.instance_assignment().to_vec()
    }

    fn shape_digest(&self) -> [u8; 32] {
        circuit_shape_digest(self.cs)
    }
}

/// A zero-knowledge proof system that can prove and verify any [`Circuit`]:
/// per-shape `setup`, per-statement `prove`, and `verify` against prepared
/// key material.
///
/// The split API is shape/assignment-level: [`ProofSystem::setup_shape`]
/// consumes a witness-free [`CompiledShape`] (and the returned keys retain
/// it), [`ProofSystem::prove_assignment`] consumes only a statement's flat
/// [`WitnessAssignment`]. The circuit-level methods are conveniences that
/// compile/fill on the caller's behalf.
///
/// The trait is object-safe — the runtime's pool, cache and CLI all work
/// with `&dyn ProofSystem` — which is why randomness arrives as
/// `&mut dyn RngCore` rather than a generic parameter.
pub trait ProofSystem: Send + Sync {
    /// The [`Backend`] tag this system dispatches as.
    fn backend(&self) -> Backend;

    /// Short system name ("groth16", "spartan").
    fn name(&self) -> &'static str {
        self.backend().name()
    }

    /// Runs the per-circuit-shape setup — CRS generation for Groth16,
    /// transparent preprocessing for Spartan — from a compiled shape.
    /// Witness-free by construction: a shape pass never materialises
    /// values, and this method only sees its output.
    fn setup_shape(
        &self,
        shape: &Arc<CompiledShape<Fr>>,
        rng: &mut dyn RngCore,
    ) -> (ProverKey, VerifierKey);

    /// Proves a statement given only its flat assignment, against a key
    /// prepared by [`ProofSystem::setup_shape`] for the statement's shape.
    /// This is the prove-many hot path: no synthesis, no matrix
    /// extraction. The returned metrics report zero setup time (the key is
    /// assumed amortised).
    ///
    /// # Panics
    /// Panics if the key belongs to a different proof system or the
    /// assignment does not match the key's shape.
    fn prove_assignment(
        &self,
        key: &ProverKey,
        witness: &WitnessAssignment<Fr>,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts;

    /// Verifies artifacts against a key prepared by
    /// [`ProofSystem::setup_shape`]. Returns `false` (rather than
    /// panicking) on key/proof mismatch.
    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool;

    /// Verifies against a compiled shape without prepared keys: Spartan
    /// re-derives its preprocessing from the shape, while Groth16 trusts
    /// the verification key embedded in the artifacts. When the expected
    /// key material is known, prefer [`ProofSystem::verify`], which binds
    /// the proof to that key.
    fn verify_with_shape(&self, shape: &CompiledShape<Fr>, artifacts: &ProofArtifacts) -> bool;

    /// Circuit-level setup: compiles the shape (witness-free) and runs
    /// [`ProofSystem::setup_shape`].
    fn setup(&self, circuit: &dyn Circuit, rng: &mut dyn RngCore) -> (ProverKey, VerifierKey) {
        self.setup_shape(&Arc::new(compile_shape(circuit)), rng)
    }

    /// Circuit-level prove: runs the witness pass and
    /// [`ProofSystem::prove_assignment`].
    ///
    /// # Panics
    /// Panics if the key belongs to a different proof system.
    fn prove(
        &self,
        key: &ProverKey,
        circuit: &dyn Circuit,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts {
        self.prove_assignment(key, &generate_witness(circuit), rng)
    }

    /// Circuit-level keyless verification: compiles the shape and runs
    /// [`ProofSystem::verify_with_shape`].
    fn verify_with_circuit(&self, circuit: &dyn Circuit, artifacts: &ProofArtifacts) -> bool {
        self.verify_with_shape(&compile_shape(circuit), artifacts)
    }

    /// One-shot setup + prove, with the setup time recorded in the
    /// metrics. The shape is compiled once and shared by both steps.
    fn prove_oneshot(&self, circuit: &dyn Circuit, rng: &mut dyn RngCore) -> ProofArtifacts {
        let t0 = Instant::now();
        let shape = Arc::new(compile_shape(circuit));
        let (pk, _vk) = self.setup_shape(&shape, rng);
        let setup_time = t0.elapsed();
        let witness = generate_witness_for(circuit, &shape);
        let mut artifacts = self.prove_assignment(&pk, &witness, rng);
        artifacts.metrics.setup_time = setup_time;
        artifacts
    }
}

/// The Groth16 proof system (`zkVC-G`): constant proof size and pairing
/// verification, per-circuit trusted setup.
#[derive(Copy, Clone, Debug, Default)]
pub struct Groth16System;

/// The Spartan-style transparent proof system (`zkVC-S`): no trusted setup,
/// logarithmic-size proofs.
#[derive(Copy, Clone, Debug, Default)]
pub struct SpartanSystem;

/// The static [`Groth16System`] instance [`Backend::system`] dispatches to.
pub static GROTH16: Groth16System = Groth16System;

/// The static [`SpartanSystem`] instance [`Backend::system`] dispatches to.
pub static SPARTAN: SpartanSystem = SpartanSystem;

fn artifacts_from(
    data: ProofData,
    proof_size_bytes: usize,
    backend: Backend,
    public_inputs: Vec<Fr>,
    num_constraints: usize,
    num_variables: usize,
    prove_time: std::time::Duration,
) -> ProofArtifacts {
    ProofArtifacts {
        data,
        public_inputs,
        metrics: crate::backend::ProveMetrics {
            backend,
            setup_time: std::time::Duration::ZERO,
            prove_time,
            proof_size_bytes,
            num_constraints,
            num_variables,
        },
    }
}

impl ProofSystem for Groth16System {
    fn backend(&self) -> Backend {
        Backend::Groth16
    }

    fn setup_shape(
        &self,
        shape: &Arc<CompiledShape<Fr>>,
        rng: &mut dyn RngCore,
    ) -> (ProverKey, VerifierKey) {
        let (pk, vk) = groth16::setup_shape(Arc::clone(shape), rng);
        (ProverKey::Groth16(pk), VerifierKey::Groth16(vk))
    }

    fn prove_assignment(
        &self,
        key: &ProverKey,
        witness: &WitnessAssignment<Fr>,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts {
        let ProverKey::Groth16(pk) = key else {
            panic!(
                "backend/key mismatch: Groth16 cannot prove with a {:?} key",
                key.backend()
            );
        };
        let z = witness.full();
        let t0 = Instant::now();
        let proof = groth16::prove_assignment(pk, &z, rng);
        let prove_time = t0.elapsed();
        let size = proof.size_in_bytes();
        artifacts_from(
            ProofData::Groth16 {
                vk: pk.vk.clone(),
                proof,
            },
            size,
            Backend::Groth16,
            witness.instance.clone(),
            pk.shape.num_constraints(),
            pk.shape.num_variables(),
            prove_time,
        )
    }

    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool {
        match (key, &artifacts.data) {
            (VerifierKey::Groth16(vk), ProofData::Groth16 { proof, .. }) => {
                groth16::verify(vk, &artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }

    fn verify_with_shape(&self, _shape: &CompiledShape<Fr>, artifacts: &ProofArtifacts) -> bool {
        match &artifacts.data {
            ProofData::Groth16 { vk, proof } => {
                groth16::verify(vk, &artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }
}

impl ProofSystem for SpartanSystem {
    fn backend(&self) -> Backend {
        Backend::Spartan
    }

    fn setup_shape(
        &self,
        shape: &Arc<CompiledShape<Fr>>,
        _rng: &mut dyn RngCore,
    ) -> (ProverKey, VerifierKey) {
        // Preprocess once; the verifier reuses the prover's instance
        // instead of re-deriving it from the shape.
        let prover = SpartanProver::preprocess_shape(shape);
        let verifier = prover.to_verifier();
        (ProverKey::Spartan(prover), VerifierKey::Spartan(verifier))
    }

    fn prove_assignment(
        &self,
        key: &ProverKey,
        witness: &WitnessAssignment<Fr>,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts {
        let ProverKey::Spartan(prover) = key else {
            panic!(
                "backend/key mismatch: Spartan cannot prove with a {:?} key",
                key.backend()
            );
        };
        let t0 = Instant::now();
        let proof = prover.prove_assignment(&witness.instance, &witness.witness, rng);
        let prove_time = t0.elapsed();
        let size = proof.size_in_bytes();
        artifacts_from(
            ProofData::Spartan {
                proof: Box::new(proof),
            },
            size,
            Backend::Spartan,
            witness.instance.clone(),
            prover.num_constraints(),
            prover.num_variables(),
            prove_time,
        )
    }

    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool {
        match (key, &artifacts.data) {
            (VerifierKey::Spartan(verifier), ProofData::Spartan { proof }) => {
                verifier.verify(&artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }

    fn verify_with_shape(&self, shape: &CompiledShape<Fr>, artifacts: &ProofArtifacts) -> bool {
        match &artifacts.data {
            ProofData::Spartan { proof } => {
                SpartanVerifier::preprocess_shape(shape).verify(&artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }
}

/// Pins each value to its public counterpart with one equality constraint
/// per cell: `(value_i - public_i) * 1 = 0`.
///
/// This is the one audited form of the statement-binding construction,
/// shared by the CRPC public-output matmuls and `zkvc-nn`'s logit binding.
/// Per-cell constraints are essential: any single *aggregate* relation
/// over the publics (e.g. the CRPC Z-fold, whose `Z` is public) can be
/// satisfied by a forged assignment with the same aggregate, whereas one
/// constraint per cell gives every public output its own independent
/// column in the verification key.
///
/// # Panics
/// Panics if the two slices differ in length.
pub fn bind_public_outputs<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    values: &[LinearCombination<Fr>],
    publics: &[LinearCombination<Fr>],
) {
    assert_eq!(
        values.len(),
        publics.len(),
        "binding requires one public cell per value"
    );
    for (value, public) in values.iter().zip(publics.iter()) {
        cs.enforce_named(
            value.clone() - public,
            LinearCombination::constant(zkvc_ff::Field::one()),
            LinearCombination::zero(),
            "public output binding",
        );
    }
}

/// Computes the shape digest of a constraint system: a collision-resistant
/// fingerprint of the R1CS *structure* (constraint matrices, coefficient
/// values and the instance/witness split — not the assignment).
///
/// Two constraint systems get the same digest iff Groth16 CRS material and
/// Spartan preprocessed state are interchangeable between them. The
/// encoding is injective: every section is length-prefixed and each
/// linear-combination term serialises its resolved column index alongside
/// the canonical coefficient bytes. The same digest is produced —
/// witness-free — by the shape pass (see
/// [`ShapeBuilder::finish`](zkvc_r1cs::ShapeBuilder::finish)); the
/// canonical implementation lives in `zkvc-r1cs` and this is a re-export
/// kept at its historical path.
pub fn circuit_shape_digest(cs: &ConstraintSystem<Fr>) -> [u8; 32] {
    zkvc_r1cs::shape_digest(cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{MatMulBuilder, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::{Field, PrimeField};

    fn square_cs(x: u64) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(x * x));
        let w = cs.alloc_witness(Fr::from_u64(x));
        cs.enforce(w.into(), w.into(), out.into());
        cs
    }

    #[test]
    fn trait_objects_prove_and_verify_both_systems() {
        let mut rng = StdRng::seed_from_u64(31);
        let cs = square_cs(12);
        let circuit = RawCircuit::named(&cs, "square");
        assert_eq!(circuit.name(), "square");
        assert_eq!(circuit.public_outputs(), vec![Fr::from_u64(144)]);
        for backend in Backend::ALL {
            let system: &dyn ProofSystem = backend.system();
            assert_eq!(system.backend(), backend);
            assert_eq!(system.name(), backend.name());
            let (pk, vk) = system.setup(&circuit, &mut rng);
            let artifacts = system.prove(&pk, &circuit, &mut rng);
            assert!(system.verify(&vk, &artifacts), "{backend:?}");
            assert!(
                system.verify_with_circuit(&circuit, &artifacts),
                "{backend:?}"
            );
            // The trait binds public outputs exactly like the Backend API.
            let mut tampered = artifacts.clone();
            tampered.public_inputs[0] += Fr::one();
            assert!(!system.verify(&vk, &tampered), "{backend:?}");
        }
    }

    #[test]
    fn split_shape_and_witness_pipeline_roundtrips() {
        // The fully split flow: compile once, fill witnesses per
        // statement, prove against the shape-bound key.
        let mut rng = StdRng::seed_from_u64(35);
        let cs12 = square_cs(12);
        let cs13 = square_cs(13);
        let shape = Arc::new(compile_shape(&RawCircuit::new(&cs12)));
        assert_eq!(shape.digest, circuit_shape_digest(&cs12));
        for backend in Backend::ALL {
            let system = backend.system();
            let (pk, vk) = system.setup_shape(&shape, &mut rng);
            for cs in [&cs12, &cs13] {
                let witness = generate_witness_for(&RawCircuit::new(cs), &shape);
                assert_eq!(witness.full(), cs.full_assignment());
                let artifacts = system.prove_assignment(&pk, &witness, &mut rng);
                assert!(system.verify(&vk, &artifacts), "{backend:?}");
                assert!(system.verify_with_shape(&shape, &artifacts), "{backend:?}");
                assert_eq!(artifacts.public_inputs, witness.instance);
            }
        }
    }

    #[test]
    fn setup_is_witness_free() {
        // A circuit whose witness closures panic when invoked: setup and
        // shape digests must run without touching them.
        struct PanickyWitness;
        impl Circuit for PanickyWitness {
            fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
                use zkvc_r1cs::SinkExt;
                let out = sink.alloc_instance_lazy(|| panic!("instance value materialised"));
                let w = sink.alloc_witness_lazy(|| panic!("witness value materialised"));
                sink.enforce(w.into(), w.into(), out.into());
            }
        }
        let circuit = PanickyWitness;
        let shape = compile_shape(&circuit);
        assert_eq!(shape.num_constraints(), 1);
        assert_eq!(shape.num_instance(), 1);
        assert_eq!(shape.num_witness(), 1);
        assert_eq!(circuit.shape_digest(), shape.digest);
        let mut rng = StdRng::seed_from_u64(36);
        for backend in Backend::ALL {
            // Both the shape-level and the circuit-level setup paths never
            // materialise a value.
            let _ = backend
                .system()
                .setup_shape(&Arc::new(shape.clone()), &mut rng);
            let _ = backend.system().setup(&circuit, &mut rng);
        }
        // The witness pass, by contrast, must blow up.
        assert!(std::panic::catch_unwind(|| generate_witness(&circuit)).is_err());
    }

    #[test]
    fn oneshot_records_setup_time_and_cross_system_verify_fails() {
        let mut rng = StdRng::seed_from_u64(32);
        let cs = square_cs(5);
        let circuit = RawCircuit::new(&cs);
        let g = Backend::Groth16.system().prove_oneshot(&circuit, &mut rng);
        let s = Backend::Spartan.system().prove_oneshot(&circuit, &mut rng);
        let (_pk, vk_s) = Backend::Spartan.system().setup(&circuit, &mut rng);
        // A Groth16 proof against a Spartan key is a mismatch, not a panic.
        assert!(!Backend::Spartan.system().verify(&vk_s, &g));
        assert!(Backend::Spartan.system().verify(&vk_s, &s));
        assert!(!Backend::Groth16.system().verify_with_circuit(&circuit, &s));
    }

    #[test]
    #[should_panic(expected = "backend/key mismatch")]
    fn proving_with_foreign_key_panics() {
        let mut rng = StdRng::seed_from_u64(33);
        let cs = square_cs(4);
        let circuit = RawCircuit::new(&cs);
        let (pk, _vk) = Backend::Spartan.system().setup(&circuit, &mut rng);
        Backend::Groth16.system().prove(&pk, &circuit, &mut rng);
    }

    #[test]
    fn matmul_job_is_a_circuit() {
        let mut rng = StdRng::seed_from_u64(34);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::CrpcPsq)
            .build_random(&mut rng);
        let circuit: &dyn Circuit = &job;
        assert_eq!(circuit.shape_digest(), circuit_shape_digest(&job.cs));
        assert!(circuit.name().contains("2x3x2"));
        // Private-output jobs bind nothing.
        assert!(circuit.public_outputs().is_empty());
    }

    #[test]
    fn digest_ignores_assignment_values() {
        assert_eq!(
            circuit_shape_digest(&square_cs(3)),
            circuit_shape_digest(&square_cs(7))
        );
    }

    #[test]
    fn digest_distinguishes_structure() {
        let base = circuit_shape_digest(&square_cs(3));

        // Extra constraint.
        let mut cs = square_cs(3);
        cs.enforce_zero(LinearCombination::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Extra (unconstrained) variable.
        let mut cs = square_cs(3);
        cs.alloc_witness(Fr::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Different coefficient.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(18));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(
            LinearCombination::from(w) * Fr::from_u64(2),
            w.into(),
            out.into(),
        );
        assert_ne!(circuit_shape_digest(&cs), base);

        // Instance/witness split matters even with identical matrices.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_witness(Fr::from_u64(9));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(w.into(), w.into(), out.into());
        assert_ne!(circuit_shape_digest(&cs), base);
    }
}
