//! The circuit-generic proving API: the [`Circuit`] and [`ProofSystem`]
//! traits that decouple *what* is proved from *how* it is proved.
//!
//! Anything that can synthesise an R1CS with a witness — a matmul statement
//! ([`MatMulJob`](crate::matmul::MatMulJob)), a whole Transformer forward
//! pass (`zkvc_nn::ModelCircuit`), or a raw constraint system wrapped in
//! [`RawCircuit`] — implements [`Circuit`] and can then be proved by any
//! [`ProofSystem`]. The two systems built in this workspace are
//! [`Groth16System`] (`zkVC-G`) and [`SpartanSystem`] (`zkVC-S`); the
//! [`Backend`] enum remains as a thin dispatcher over them for callers
//! that want a `Copy` value instead of a trait object.
//!
//! A circuit's **public outputs** are its instance assignment: the values a
//! proof *binds*. A circuit with no instance variables (e.g. a matmul with
//! X, W and Y all private) only commits to its shape — any honest proof for
//! the same shape verifies interchangeably. Exposing outputs as public
//! inputs (see `MatMulBuilder::public_outputs`) upgrades that to
//! statement-level binding: a proof replayed against different claimed
//! outputs fails verification.
//!
//! ```rust
//! use zkvc_core::api::{Circuit, ProofSystem};
//! use zkvc_core::matmul::{MatMulBuilder, Strategy};
//! use zkvc_core::Backend;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = vec![vec![1i64, 2], vec![3, 4]];
//! let w = vec![vec![5i64, 6], vec![7, 8]];
//! let job = MatMulBuilder::new(2, 2, 2)
//!     .strategy(Strategy::CrpcPsq)
//!     .public_outputs(true)
//!     .build_integers(&x, &w);
//!
//! // Pick a proof system at runtime; `job` is just a `Circuit`.
//! let system: &dyn ProofSystem = Backend::Spartan.system();
//! let (pk, vk) = system.setup(&job, &mut rng);
//! let artifacts = system.prove(&pk, &job, &mut rng);
//! assert!(system.verify(&vk, &artifacts));
//!
//! // The proof binds the public outputs: tampering with Y must fail.
//! let mut tampered = artifacts.clone();
//! tampered.public_inputs[0] += zkvc_ff::Fr::one();
//! # use zkvc_ff::Field;
//! assert!(!system.verify(&vk, &tampered));
//! ```

use std::time::Instant;

use rand::RngCore;
use zkvc_ff::{Fr, PrimeField};
use zkvc_groth16 as groth16;
use zkvc_hash::Sha256;
use zkvc_r1cs::{ConstraintSystem, LinearCombination};
use zkvc_spartan::{SpartanProver, SpartanVerifier};

use crate::backend::{Backend, ProofArtifacts, ProofData, ProverKey, VerifierKey};

/// A statement plus its witness, in the only form the proof systems need:
/// a synthesised constraint system together with a canonical identity
/// (shape digest) and the public outputs the statement binds.
///
/// Implementors typically hold the constraint system they built during
/// synthesis; the trait only *reads* it, so one circuit value can be proved
/// many times (or by several systems) without re-synthesising.
pub trait Circuit {
    /// The synthesised constraint system, witness included.
    fn constraint_system(&self) -> &ConstraintSystem<Fr>;

    /// Human-readable label for reports and diagnostics.
    fn name(&self) -> String {
        "r1cs".to_string()
    }

    /// The public outputs this statement binds — the circuit's instance
    /// assignment, in allocation order. Empty for circuits that keep every
    /// value private (shape-level binding only).
    fn public_outputs(&self) -> Vec<Fr> {
        self.constraint_system().instance_assignment().to_vec()
    }

    /// A collision-resistant fingerprint of the circuit *structure* (not
    /// the assignment): the identity under which proving/verifying key
    /// material is reusable. See [`circuit_shape_digest`].
    fn shape_digest(&self) -> [u8; 32] {
        circuit_shape_digest(self.constraint_system())
    }
}

/// A raw constraint system viewed as a [`Circuit`], for callers that
/// synthesise R1CS directly instead of going through a builder.
#[derive(Clone, Debug)]
pub struct RawCircuit<'a> {
    cs: &'a ConstraintSystem<Fr>,
    label: &'a str,
}

impl<'a> RawCircuit<'a> {
    /// Wraps a constraint system with the default label.
    pub fn new(cs: &'a ConstraintSystem<Fr>) -> Self {
        RawCircuit { cs, label: "r1cs" }
    }

    /// Wraps a constraint system with a custom label.
    pub fn named(cs: &'a ConstraintSystem<Fr>, label: &'a str) -> Self {
        RawCircuit { cs, label }
    }
}

impl Circuit for RawCircuit<'_> {
    fn constraint_system(&self) -> &ConstraintSystem<Fr> {
        self.cs
    }

    fn name(&self) -> String {
        self.label.to_string()
    }
}

/// A zero-knowledge proof system that can prove and verify any [`Circuit`]:
/// per-shape `setup`, per-statement `prove`, and `verify` against prepared
/// key material.
///
/// The trait is object-safe — the runtime's pool, cache and CLI all work
/// with `&dyn ProofSystem` — which is why randomness arrives as
/// `&mut dyn RngCore` rather than a generic parameter.
pub trait ProofSystem: Send + Sync {
    /// The [`Backend`] tag this system dispatches as.
    fn backend(&self) -> Backend;

    /// Short system name ("groth16", "spartan").
    fn name(&self) -> &'static str {
        self.backend().name()
    }

    /// Runs the per-circuit-shape setup: CRS generation for Groth16,
    /// transparent preprocessing for Spartan. Only the constraint
    /// *structure* of the circuit matters; the returned keys prove and
    /// verify any statement with an identical shape.
    fn setup(&self, circuit: &dyn Circuit, rng: &mut dyn RngCore) -> (ProverKey, VerifierKey);

    /// Proves the circuit's witness against a key prepared by
    /// [`ProofSystem::setup`] for the same shape. The returned metrics
    /// report zero setup time (the key is assumed amortised).
    ///
    /// # Panics
    /// Panics if the key belongs to a different proof system.
    fn prove(
        &self,
        key: &ProverKey,
        circuit: &dyn Circuit,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts;

    /// Verifies artifacts against a key prepared by [`ProofSystem::setup`].
    /// Returns `false` (rather than panicking) on key/proof mismatch.
    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool;

    /// Verifies against the circuit structure without prepared keys:
    /// Spartan re-derives its preprocessing from the constraint system,
    /// while Groth16 trusts the verification key embedded in the artifacts.
    /// When the expected key material is known, prefer
    /// [`ProofSystem::verify`], which binds the proof to that key.
    fn verify_with_circuit(&self, circuit: &dyn Circuit, artifacts: &ProofArtifacts) -> bool;

    /// One-shot setup + prove, with the setup time recorded in the metrics.
    fn prove_oneshot(&self, circuit: &dyn Circuit, rng: &mut dyn RngCore) -> ProofArtifacts {
        let t0 = Instant::now();
        let (pk, _vk) = self.setup(circuit, rng);
        let setup_time = t0.elapsed();
        let mut artifacts = self.prove(&pk, circuit, rng);
        artifacts.metrics.setup_time = setup_time;
        artifacts
    }
}

/// The Groth16 proof system (`zkVC-G`): constant proof size and pairing
/// verification, per-circuit trusted setup.
#[derive(Copy, Clone, Debug, Default)]
pub struct Groth16System;

/// The Spartan-style transparent proof system (`zkVC-S`): no trusted setup,
/// logarithmic-size proofs.
#[derive(Copy, Clone, Debug, Default)]
pub struct SpartanSystem;

/// The static [`Groth16System`] instance [`Backend::system`] dispatches to.
pub static GROTH16: Groth16System = Groth16System;

/// The static [`SpartanSystem`] instance [`Backend::system`] dispatches to.
pub static SPARTAN: SpartanSystem = SpartanSystem;

fn artifacts_from(
    data: ProofData,
    proof_size_bytes: usize,
    backend: Backend,
    cs: &ConstraintSystem<Fr>,
    prove_time: std::time::Duration,
) -> ProofArtifacts {
    ProofArtifacts {
        data,
        public_inputs: cs.instance_assignment().to_vec(),
        metrics: crate::backend::ProveMetrics {
            backend,
            setup_time: std::time::Duration::ZERO,
            prove_time,
            proof_size_bytes,
            num_constraints: cs.num_constraints(),
            num_variables: cs.num_variables(),
        },
    }
}

impl ProofSystem for Groth16System {
    fn backend(&self) -> Backend {
        Backend::Groth16
    }

    fn setup(&self, circuit: &dyn Circuit, rng: &mut dyn RngCore) -> (ProverKey, VerifierKey) {
        let (pk, vk) = groth16::setup(circuit.constraint_system(), rng);
        (ProverKey::Groth16(pk), VerifierKey::Groth16(vk))
    }

    fn prove(
        &self,
        key: &ProverKey,
        circuit: &dyn Circuit,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts {
        let ProverKey::Groth16(pk) = key else {
            panic!(
                "backend/key mismatch: Groth16 cannot prove with a {:?} key",
                key.backend()
            );
        };
        let cs = circuit.constraint_system();
        let t0 = Instant::now();
        let proof = groth16::prove(pk, cs, rng);
        let prove_time = t0.elapsed();
        let size = proof.size_in_bytes();
        artifacts_from(
            ProofData::Groth16 {
                vk: pk.vk.clone(),
                proof,
            },
            size,
            Backend::Groth16,
            cs,
            prove_time,
        )
    }

    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool {
        match (key, &artifacts.data) {
            (VerifierKey::Groth16(vk), ProofData::Groth16 { proof, .. }) => {
                groth16::verify(vk, &artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }

    fn verify_with_circuit(&self, _circuit: &dyn Circuit, artifacts: &ProofArtifacts) -> bool {
        match &artifacts.data {
            ProofData::Groth16 { vk, proof } => {
                groth16::verify(vk, &artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }
}

impl ProofSystem for SpartanSystem {
    fn backend(&self) -> Backend {
        Backend::Spartan
    }

    fn setup(&self, circuit: &dyn Circuit, _rng: &mut dyn RngCore) -> (ProverKey, VerifierKey) {
        // Preprocess once; the verifier reuses the prover's instance
        // instead of re-deriving it from the constraint system.
        let prover = SpartanProver::preprocess(circuit.constraint_system());
        let verifier = prover.to_verifier();
        (ProverKey::Spartan(prover), VerifierKey::Spartan(verifier))
    }

    fn prove(
        &self,
        key: &ProverKey,
        circuit: &dyn Circuit,
        rng: &mut dyn RngCore,
    ) -> ProofArtifacts {
        let ProverKey::Spartan(prover) = key else {
            panic!(
                "backend/key mismatch: Spartan cannot prove with a {:?} key",
                key.backend()
            );
        };
        let cs = circuit.constraint_system();
        let t0 = Instant::now();
        let proof = prover.prove(cs, rng);
        let prove_time = t0.elapsed();
        let size = proof.size_in_bytes();
        artifacts_from(
            ProofData::Spartan {
                proof: Box::new(proof),
            },
            size,
            Backend::Spartan,
            cs,
            prove_time,
        )
    }

    fn verify(&self, key: &VerifierKey, artifacts: &ProofArtifacts) -> bool {
        match (key, &artifacts.data) {
            (VerifierKey::Spartan(verifier), ProofData::Spartan { proof }) => {
                verifier.verify(&artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }

    fn verify_with_circuit(&self, circuit: &dyn Circuit, artifacts: &ProofArtifacts) -> bool {
        match &artifacts.data {
            ProofData::Spartan { proof } => {
                SpartanVerifier::preprocess(circuit.constraint_system())
                    .verify(&artifacts.public_inputs, proof)
            }
            _ => false,
        }
    }
}

/// Pins each value to its public counterpart with one equality constraint
/// per cell: `(value_i - public_i) * 1 = 0`.
///
/// This is the one audited form of the statement-binding construction,
/// shared by the CRPC public-output matmuls and `zkvc-nn`'s logit binding.
/// Per-cell constraints are essential: any single *aggregate* relation
/// over the publics (e.g. the CRPC Z-fold, whose `Z` is public) can be
/// satisfied by a forged assignment with the same aggregate, whereas one
/// constraint per cell gives every public output its own independent
/// column in the verification key.
///
/// # Panics
/// Panics if the two slices differ in length.
pub fn bind_public_outputs(
    cs: &mut ConstraintSystem<Fr>,
    values: &[LinearCombination<Fr>],
    publics: &[LinearCombination<Fr>],
) {
    assert_eq!(
        values.len(),
        publics.len(),
        "binding requires one public cell per value"
    );
    for (value, public) in values.iter().zip(publics.iter()) {
        cs.enforce_named(
            value.clone() - public,
            LinearCombination::constant(zkvc_ff::Field::one()),
            LinearCombination::zero(),
            "public output binding",
        );
    }
}

/// Domain-separation prefix so shape digests can never collide with other
/// SHA-256 uses in the stack (string kept from the digest's previous home
/// in `zkvc-runtime`). Note the digest of any given *job* still moves
/// whenever its circuit structure does — e.g. this API redesign changed
/// every default runtime matmul shape by making outputs public — in which
/// case stale `DiskKeyCache` entries simply stop hitting; they are keyed
/// by digest and never returned for a different circuit.
const DIGEST_DOMAIN: &[u8] = b"zkvc-runtime-circuit-shape-v1";

/// Computes the shape digest of a constraint system: a collision-resistant
/// fingerprint of the R1CS *structure* (constraint matrices, coefficient
/// values and the instance/witness split — not the assignment).
///
/// Two constraint systems get the same digest iff Groth16 CRS material and
/// Spartan preprocessed state are interchangeable between them. The
/// encoding is injective: every section is length-prefixed and each
/// linear-combination term serialises its resolved column index alongside
/// the canonical coefficient bytes.
pub fn circuit_shape_digest(cs: &ConstraintSystem<Fr>) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(DIGEST_DOMAIN);
    h.update(&(cs.num_instance() as u64).to_le_bytes());
    h.update(&(cs.num_witness() as u64).to_le_bytes());
    h.update(&(cs.num_constraints() as u64).to_le_bytes());

    let absorb_lcs = |h: &mut Sha256, tag: u8, lcs: &[LinearCombination<Fr>]| {
        h.update(&[tag]);
        for lc in lcs {
            h.update(&(lc.terms.len() as u64).to_le_bytes());
            for (var, coeff) in &lc.terms {
                h.update(&(cs.variable_index(*var) as u64).to_le_bytes());
                h.update(&coeff.to_bytes_le());
            }
        }
    };

    let (a, b, c) = cs.constraints();
    absorb_lcs(&mut h, b'A', a);
    absorb_lcs(&mut h, b'B', b);
    absorb_lcs(&mut h, b'C', c);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{MatMulBuilder, Strategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc_ff::Field;

    fn square_cs(x: u64) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(x * x));
        let w = cs.alloc_witness(Fr::from_u64(x));
        cs.enforce(w.into(), w.into(), out.into());
        cs
    }

    #[test]
    fn trait_objects_prove_and_verify_both_systems() {
        let mut rng = StdRng::seed_from_u64(31);
        let cs = square_cs(12);
        let circuit = RawCircuit::named(&cs, "square");
        assert_eq!(circuit.name(), "square");
        assert_eq!(circuit.public_outputs(), vec![Fr::from_u64(144)]);
        for backend in Backend::ALL {
            let system: &dyn ProofSystem = backend.system();
            assert_eq!(system.backend(), backend);
            assert_eq!(system.name(), backend.name());
            let (pk, vk) = system.setup(&circuit, &mut rng);
            let artifacts = system.prove(&pk, &circuit, &mut rng);
            assert!(system.verify(&vk, &artifacts), "{backend:?}");
            assert!(
                system.verify_with_circuit(&circuit, &artifacts),
                "{backend:?}"
            );
            // The trait binds public outputs exactly like the Backend API.
            let mut tampered = artifacts.clone();
            tampered.public_inputs[0] += Fr::one();
            assert!(!system.verify(&vk, &tampered), "{backend:?}");
        }
    }

    #[test]
    fn oneshot_records_setup_time_and_cross_system_verify_fails() {
        let mut rng = StdRng::seed_from_u64(32);
        let cs = square_cs(5);
        let circuit = RawCircuit::new(&cs);
        let g = Backend::Groth16.system().prove_oneshot(&circuit, &mut rng);
        let s = Backend::Spartan.system().prove_oneshot(&circuit, &mut rng);
        let (_pk, vk_s) = Backend::Spartan.system().setup(&circuit, &mut rng);
        // A Groth16 proof against a Spartan key is a mismatch, not a panic.
        assert!(!Backend::Spartan.system().verify(&vk_s, &g));
        assert!(Backend::Spartan.system().verify(&vk_s, &s));
        assert!(!Backend::Groth16.system().verify_with_circuit(&circuit, &s));
    }

    #[test]
    #[should_panic(expected = "backend/key mismatch")]
    fn proving_with_foreign_key_panics() {
        let mut rng = StdRng::seed_from_u64(33);
        let cs = square_cs(4);
        let circuit = RawCircuit::new(&cs);
        let (pk, _vk) = Backend::Spartan.system().setup(&circuit, &mut rng);
        Backend::Groth16.system().prove(&pk, &circuit, &mut rng);
    }

    #[test]
    fn matmul_job_is_a_circuit() {
        let mut rng = StdRng::seed_from_u64(34);
        let job = MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::CrpcPsq)
            .build_random(&mut rng);
        let circuit: &dyn Circuit = &job;
        assert_eq!(circuit.shape_digest(), circuit_shape_digest(&job.cs));
        assert!(circuit.name().contains("2x3x2"));
        // Private-output jobs bind nothing.
        assert!(circuit.public_outputs().is_empty());
    }

    #[test]
    fn digest_ignores_assignment_values() {
        assert_eq!(
            circuit_shape_digest(&square_cs(3)),
            circuit_shape_digest(&square_cs(7))
        );
    }

    #[test]
    fn digest_distinguishes_structure() {
        let base = circuit_shape_digest(&square_cs(3));

        // Extra constraint.
        let mut cs = square_cs(3);
        cs.enforce_zero(LinearCombination::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Extra (unconstrained) variable.
        let mut cs = square_cs(3);
        cs.alloc_witness(Fr::zero());
        assert_ne!(circuit_shape_digest(&cs), base);

        // Different coefficient.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_instance(Fr::from_u64(18));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(
            LinearCombination::from(w) * Fr::from_u64(2),
            w.into(),
            out.into(),
        );
        assert_ne!(circuit_shape_digest(&cs), base);

        // Instance/witness split matters even with identical matrices.
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_witness(Fr::from_u64(9));
        let w = cs.alloc_witness(Fr::from_u64(3));
        cs.enforce(w.into(), w.into(), out.into());
        assert_ne!(circuit_shape_digest(&cs), base);
    }
}
