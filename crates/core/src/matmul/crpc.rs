//! Constraint-Reduced Polynomial Circuits (CRPC), with and without PSQ.
//!
//! CRPC folds the whole matrix multiplication into the single polynomial
//! identity (paper §III-A):
//!
//! ```text
//!   sum_{j<b} sum_{i<a} Z^{ib+j} y_ij
//!     = sum_{k<n} ( sum_{i<a} Z^{ib} x_ik ) * ( sum_{j<b} Z^j w_kj )
//! ```
//!
//! Because the coefficients `Z^m` are field constants of the linear
//! combinations, each `k`-term costs exactly one multiplication constraint:
//! `n` constraints instead of `a*b*n`. The products are accumulated either
//! with one extra long-addition constraint (plain CRPC, `n + 1` constraints)
//! or with PSQ prefix sums folded into the product constraints (`n`
//! constraints — the full zkVC encoding).
//!
//! Emission is written against [`ConstraintSink`]; the challenge powers
//! `Z^m` are *structural* (they live in the constraint coefficients), so
//! the shape pass computes them while all witness values stay unevaluated.

use zkvc_ff::{Field, Fr};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SinkExt};

use super::powers_of;

/// Allocates the output matrix as witness variables holding the honest
/// product values, and returns (y LCs, folded-output LC `sum Z^{ib+j} y_ij`).
fn allocate_outputs<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    zp: &[Fr],
) -> (Vec<Vec<LinearCombination<Fr>>>, LinearCombination<Fr>) {
    let a = x.len();
    let n = w.len();
    let b = w[0].len();
    let mut y = Vec::with_capacity(a);
    let mut folded = LinearCombination::zero();
    for (i, xi) in x.iter().enumerate() {
        let mut row = Vec::with_capacity(b);
        for j in 0..b {
            let val = cs.wants_values().then(|| {
                let mut acc = Fr::zero();
                for (k, wk) in w.iter().enumerate().take(n) {
                    acc += cs.lc_value(&xi[k]).expect("sink carries values")
                        * cs.lc_value(&wk[j]).expect("sink carries values");
                }
                acc
            });
            let v = cs.alloc_witness_opt(val);
            folded.push(v, zp[i * b + j]);
            row.push(LinearCombination::from(v));
        }
        y.push(row);
    }
    (y, folded)
}

/// Builds the folded column polynomial of `X` and row polynomial of `W` for
/// inner index `k`: `( sum_i Z^{ib} x_ik , sum_j Z^j w_kj )`.
fn folded_operands(
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    k: usize,
    zp: &[Fr],
    b: usize,
) -> (LinearCombination<Fr>, LinearCombination<Fr>) {
    let mut xcol = LinearCombination::zero();
    for (i, xi) in x.iter().enumerate() {
        xcol = xcol + xi[k].scale(&zp[i * b]);
    }
    let mut wrow = LinearCombination::zero();
    for (j, wkj) in w[k].iter().enumerate() {
        wrow = wrow + wkj.scale(&zp[j]);
    }
    (xcol, wrow)
}

/// Emits the `n` CRPC product constraints plus the long addition equating
/// the accumulated products with `folded` — the one copy of the
/// soundness-critical loop shared by [`synthesize_crpc`] and
/// [`synthesize_crpc_into`]. `n + 1` constraints.
fn synthesize_crpc_fold<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    zp: &[Fr],
    folded: LinearCombination<Fr>,
) {
    let n = w.len();
    let b = w[0].len();
    let mut t_vars = Vec::with_capacity(n);
    for k in 0..n {
        let (xcol, wrow) = folded_operands(x, w, k, zp, b);
        let val = cs.lc_product(&xcol, &wrow);
        let t = cs.alloc_witness_opt(val);
        cs.enforce_named(xcol, wrow, t.into(), "crpc product");
        t_vars.push(t);
    }
    // long addition: sum_k t_k = folded output
    let mut sum_lc = LinearCombination::zero();
    for t in &t_vars {
        sum_lc.push(*t, Fr::one());
    }
    cs.enforce_named(
        sum_lc,
        LinearCombination::constant(Fr::one()),
        folded,
        "crpc fold equality",
    );
}

/// Emits the `n` CRPC+PSQ prefix-sum product constraints, with the final
/// product writing directly into `folded` — shared by
/// [`synthesize_crpc_psq`] and [`synthesize_crpc_psq_into`]. `n`
/// constraints.
fn synthesize_crpc_psq_fold<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    zp: &[Fr],
    folded: &LinearCombination<Fr>,
) {
    let n = w.len();
    let b = w[0].len();
    let mut prev_lc = LinearCombination::zero();
    let mut prev_val = cs.wants_values().then(Fr::zero);
    for k in 0..n {
        let (xcol, wrow) = folded_operands(x, w, k, zp, b);
        if k + 1 == n {
            // last step: xcol * wrow = folded - acc_{n-2}
            cs.enforce_named(
                xcol,
                wrow,
                folded.clone() - &prev_lc,
                "crpc+psq final product",
            );
        } else {
            let val = prev_val.and_then(|p| cs.lc_product(&xcol, &wrow).map(|t| p + t));
            let acc = cs.alloc_witness_opt(val);
            cs.enforce_named(
                xcol,
                wrow,
                LinearCombination::from(acc) - &prev_lc,
                "crpc+psq product",
            );
            prev_lc = acc.into();
            prev_val = val;
        }
    }
}

/// CRPC without PSQ: `n` product constraints plus one long addition that
/// equates the accumulated products with the folded output (Table II row 3).
pub fn synthesize_crpc<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    z: Fr,
) -> Vec<Vec<LinearCombination<Fr>>> {
    let a = x.len();
    let b = w[0].len();
    let zp = powers_of(z, a * b);
    let (y, folded) = allocate_outputs(cs, x, w, &zp);
    synthesize_crpc_fold(cs, x, w, &zp, folded);
    y
}

/// CRPC + PSQ — the full zkVC encoding: the `n` folded products are chained
/// as prefix sums, and the final product constraint writes directly into the
/// folded output, so exactly `n` constraints are emitted (Table II row 4).
pub fn synthesize_crpc_psq<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    z: Fr,
) -> Vec<Vec<LinearCombination<Fr>>> {
    let a = x.len();
    let b = w[0].len();
    let zp = powers_of(z, a * b);
    let (y, folded) = allocate_outputs(cs, x, w, &zp);
    synthesize_crpc_psq_fold(cs, x, w, &zp, &folded);
    y
}

/// Binds each caller-supplied output cell to the corresponding witness
/// output with its own equality constraint (`a*b` constraints).
///
/// The per-cell constraints are what make public CRPC outputs *bind*: the
/// Z-fold alone is a single public linear relation with a publicly known
/// `Z`, so any `Y'` with the same fold (e.g. `y_0 + Z, y_1 - 1`) would
/// satisfy it — a verifier checking only the fold could be handed an
/// honest proof with forged outputs. The constraint form lives in
/// [`crate::api::bind_public_outputs`].
fn bind_outputs<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    y_wit: &[Vec<LinearCombination<Fr>>],
    y_out: &[Vec<LinearCombination<Fr>>],
) {
    for (wit_row, out_row) in y_wit.iter().zip(y_out.iter()) {
        crate::api::bind_public_outputs(cs, wit_row, out_row);
    }
}

/// [`synthesize_crpc`] with caller-supplied output cells (typically public
/// instance variables holding the honest product): the fold runs over
/// freshly allocated output witnesses, and each witness is additionally
/// pinned to its supplied cell with a per-cell equality constraint —
/// `n + 1 + a*b` constraints in total (the `a*b` binding constraints are
/// the price of statement-level outputs).
pub fn synthesize_crpc_into<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: &[Vec<LinearCombination<Fr>>],
    z: Fr,
) {
    let a = x.len();
    let b = w[0].len();
    let zp = powers_of(z, a * b);
    let (y_wit, folded) = allocate_outputs(cs, x, w, &zp);
    synthesize_crpc_fold(cs, x, w, &zp, folded);
    bind_outputs(cs, &y_wit, y_out);
}

/// [`synthesize_crpc_psq`] with caller-supplied output cells: the
/// prefix-sum fold runs over freshly allocated output witnesses, each
/// pinned to its supplied cell — `n + a*b` constraints (the per-cell
/// constraints are required because the public-Z fold alone is forgeable).
pub fn synthesize_crpc_psq_into<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: &[Vec<LinearCombination<Fr>>],
    z: Fr,
) {
    let a = x.len();
    let b = w[0].len();
    let zp = powers_of(z, a * b);
    let (y_wit, folded) = allocate_outputs(cs, x, w, &zp);
    synthesize_crpc_psq_fold(cs, x, w, &zp, &folded);
    bind_outputs(cs, &y_wit, y_out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{synthesize_vanilla, MatMulBuilder, Strategy, ZSource};
    use proptest::prelude::*;
    use zkvc_ff::PrimeField;
    use zkvc_r1cs::ConstraintSystem;

    fn alloc_matrix(
        cs: &mut ConstraintSystem<Fr>,
        vals: &[Vec<u64>],
    ) -> Vec<Vec<LinearCombination<Fr>>> {
        vals.iter()
            .map(|r| {
                r.iter()
                    .map(|v| cs.alloc_witness(Fr::from_u64(*v)).into())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn crpc_matches_vanilla_outputs() {
        let x_vals = vec![
            vec![3u64, 1, 4],
            vec![1, 5, 9],
            vec![2, 6, 5],
            vec![3, 5, 8],
        ];
        let w_vals = vec![vec![9u64, 7], vec![9, 3], vec![2, 3]];

        let mut cs_v = ConstraintSystem::<Fr>::new();
        let xv = alloc_matrix(&mut cs_v, &x_vals);
        let wv = alloc_matrix(&mut cs_v, &w_vals);
        let y_v = synthesize_vanilla(&mut cs_v, &xv, &wv);

        for (strategy, expected_constraints) in [(Strategy::Crpc, 3 + 1), (Strategy::CrpcPsq, 3)] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = alloc_matrix(&mut cs, &x_vals);
            let w = alloc_matrix(&mut cs, &w_vals);
            let input_constraints = cs.num_constraints();
            let y = super::super::synthesize_matmul(&mut cs, &x, &w, strategy, Fr::from_u64(7919));
            assert!(cs.is_satisfied(), "{strategy:?}");
            assert_eq!(
                cs.num_constraints() - input_constraints,
                expected_constraints
            );
            for i in 0..4 {
                for j in 0..2 {
                    assert_eq!(
                        cs.eval_lc(&y[i][j]),
                        cs_v.eval_lc(&y_v[i][j]),
                        "{strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_figure4_example() {
        // Figure 4(b): a 3x2 by 2x2 product needs only 2 multiplications in
        // CRPC+PSQ.
        let x_vals = vec![vec![1u64, 2], vec![3, 4], vec![5, 6]];
        let w_vals = vec![vec![7u64, 8], vec![9, 10]];
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = alloc_matrix(&mut cs, &x_vals);
        let w = alloc_matrix(&mut cs, &w_vals);
        synthesize_crpc_psq(&mut cs, &x, &w, Fr::from_u64(65537));
        assert!(cs.is_satisfied());
        assert_eq!(cs.num_constraints(), 2);
    }

    #[test]
    fn wrong_y_is_rejected_for_random_z() {
        // A cheating prover fixes Y before Z is derived (transcript mode), so
        // Schwartz-Zippel applies. Simulate by corrupting y after building.
        let x = vec![vec![1i64, 2, 3], vec![4, 5, 6]];
        let w = vec![vec![7i64, 8], vec![9, 10], vec![11, 12]];
        for strategy in [Strategy::Crpc, Strategy::CrpcPsq] {
            let job = MatMulBuilder::new(2, 3, 2)
                .strategy(strategy)
                .build_integers(&x, &w);
            let num_inputs = 2 * 3 + 3 * 2;
            for y_idx in 0..4 {
                let mut witness = job.cs.witness_assignment().to_vec();
                witness[num_inputs + y_idx] -= Fr::from_u64(1);
                let mut cs = job.cs.clone();
                cs.set_witness_assignment(witness);
                assert!(!cs.is_satisfied(), "{strategy:?} accepted wrong y[{y_idx}]");
            }
        }
    }

    #[test]
    fn degenerate_z_values_still_complete() {
        // Completeness must hold for any Z, even degenerate ones like 0/1
        // (soundness of course requires random Z).
        let x = vec![vec![2i64, 3], vec![4, 5]];
        let w = vec![vec![1i64, 2], vec![3, 4]];
        for z in [0u64, 1, 2] {
            let job = MatMulBuilder::new(2, 2, 2)
                .strategy(Strategy::CrpcPsq)
                .z_source(ZSource::Fixed(Fr::from_u64(z)))
                .build_integers(&x, &w);
            assert!(job.cs.is_satisfied(), "z={z}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// CRPC and vanilla accept exactly the same (honest) statements and
        /// produce identical output values, for random small matrices.
        #[test]
        fn prop_crpc_equivalent_to_vanilla(
            a in 1usize..4, n in 1usize..4, b in 1usize..4, seed in 0u64..1000
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let x: Vec<Vec<i64>> = (0..a).map(|_| (0..n).map(|_| rng.gen_range(-50i64..50)).collect()).collect();
            let w: Vec<Vec<i64>> = (0..n).map(|_| (0..b).map(|_| rng.gen_range(-50i64..50)).collect()).collect();
            let vanilla = MatMulBuilder::new(a, n, b).strategy(Strategy::Vanilla).build_integers(&x, &w);
            let zkvc = MatMulBuilder::new(a, n, b).strategy(Strategy::CrpcPsq).build_integers(&x, &w);
            prop_assert!(vanilla.cs.is_satisfied());
            prop_assert!(zkvc.cs.is_satisfied());
            prop_assert_eq!(vanilla.y, zkvc.y);
        }
    }
}
