//! Matrix-multiplication circuit strategies.
//!
//! This module is the heart of the paper: four interchangeable ways of
//! encoding `Y = X * W` (`X: a x n`, `W: n x b`) as R1CS constraints.
//!
//! | Strategy | Multiplication constraints | Notes |
//! |----------|---------------------------|-------|
//! | [`Strategy::Vanilla`]    | `a*b*n + a*b` | one constraint per scalar product plus one long addition per output |
//! | [`Strategy::VanillaPsq`] | `a*b*n`       | PSQ folds the long addition into the product constraints |
//! | [`Strategy::Crpc`]       | `n + 1`       | CRPC folds columns/rows into polynomials of the challenge `Z` |
//! | [`Strategy::CrpcPsq`]    | `n`           | the full zkVC construction |
//!
//! CRPC soundness rests on the Schwartz–Zippel lemma: the folded identity
//! is an equality of polynomials in `Z` of degree `< a*b`, so a single
//! random `Z` from the 246-bit scalar field catches any incorrect `Y` with
//! probability `1 - (a*b)/|F|`. The challenge is derived from a Fiat-Shamir
//! transcript over `(X, W, Y)` by default ([`ZSource::Transcript`]), or
//! supplied explicitly ([`ZSource::Fixed`]) when the caller samples it at
//! setup time (the Groth16 flow used for the paper's measurements).

mod crpc;
mod vanilla;

pub use crpc::{
    synthesize_crpc, synthesize_crpc_into, synthesize_crpc_psq, synthesize_crpc_psq_into,
};
pub use vanilla::{
    synthesize_vanilla, synthesize_vanilla_into, synthesize_vanilla_psq,
    synthesize_vanilla_psq_into,
};

use core::fmt;
use std::str::FromStr;

use rand::Rng;
use zkvc_ff::{Field, Fr, PrimeField};
use zkvc_hash::Transcript;
use zkvc_r1cs::{ConstraintSink, ConstraintSystem, LinearCombination};

use crate::api::Circuit;
use crate::backend::UnknownTokenError;

/// The matrix-multiplication circuit encodings compared in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One multiplication constraint per scalar product, plus a long
    /// addition per output element (the groth16/Spartan baselines of
    /// Fig. 3 and Fig. 6).
    Vanilla,
    /// Vanilla products with Prefix-Sum Query accumulation (ablation row 2
    /// of Table II).
    VanillaPsq,
    /// Constraint-Reduced Polynomial Circuits (ablation row 3 of Table II).
    Crpc,
    /// CRPC + PSQ — the full zkVC construction (ablation row 4 of Table II).
    CrpcPsq,
}

impl Strategy {
    /// All strategies, in the order used by the Table II ablation.
    pub const ALL: [Strategy; 4] = [
        Strategy::Vanilla,
        Strategy::VanillaPsq,
        Strategy::Crpc,
        Strategy::CrpcPsq,
    ];

    /// Human-readable name used by the benchmark harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Vanilla => "vanilla",
            Strategy::VanillaPsq => "vanilla+psq",
            Strategy::Crpc => "crpc",
            Strategy::CrpcPsq => "crpc+psq (zkVC)",
        }
    }

    /// Whether the strategy uses the CRPC polynomial folding (and therefore
    /// a challenge `Z`).
    pub fn uses_crpc(&self) -> bool {
        matches!(self, Strategy::Crpc | Strategy::CrpcPsq)
    }

    /// The machine-friendly spec token (unlike [`Strategy::name`], which is
    /// a display label containing spaces); also what [`fmt::Display`]
    /// prints.
    pub fn token(&self) -> &'static str {
        match self {
            Strategy::Vanilla => "vanilla",
            Strategy::VanillaPsq => "vanilla+psq",
            Strategy::Crpc => "crpc",
            Strategy::CrpcPsq => "crpc+psq",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for Strategy {
    type Err = UnknownTokenError;

    /// Parses a strategy token as used in job specs: `vanilla`,
    /// `vanilla+psq` (aliases `vanilla-psq`, `psq`), `crpc`, `crpc+psq`
    /// (aliases `crpc-psq`, `zkvc`), case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "vanilla" => Ok(Strategy::Vanilla),
            "vanilla+psq" | "vanilla-psq" | "psq" => Ok(Strategy::VanillaPsq),
            "crpc" => Ok(Strategy::Crpc),
            "crpc+psq" | "crpc-psq" | "zkvc" => Ok(Strategy::CrpcPsq),
            _ => Err(UnknownTokenError {
                what: "strategy",
                token: s.to_string(),
            }),
        }
    }
}

/// Where the CRPC folding challenge `Z` comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ZSource {
    /// Derive `Z` by hashing the statement `(X, W, Y)` with a Fiat-Shamir
    /// transcript. Sound without any setup assumption; this is the default
    /// and the mode the Spartan backend uses (the R1CS is rebuilt per
    /// statement, which is free of trusted setup).
    Transcript,
    /// Use a caller-supplied `Z` — e.g. sampled once at Groth16 setup time,
    /// which matches the constraint counts the paper reports for zkVC-G.
    /// The caller is responsible for sampling it after the statement is
    /// fixed (or accepting the standard "challenge baked into the CRS"
    /// assumption).
    Fixed(Fr),
}

/// Synthesises the chosen matmul encoding over existing linear combinations
/// and returns the output cells as linear combinations.
///
/// `x` must be `a x n` and `w` must be `n x b`; the result is `a x b`.
/// `z` is the CRPC challenge (ignored by the vanilla strategies).
///
/// # Panics
/// Panics if the matrix dimensions are inconsistent or empty.
pub fn synthesize_matmul<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    strategy: Strategy,
    z: Fr,
) -> Vec<Vec<LinearCombination<Fr>>> {
    validate_dims(x, w);
    match strategy {
        Strategy::Vanilla => synthesize_vanilla(cs, x, w),
        Strategy::VanillaPsq => synthesize_vanilla_psq(cs, x, w),
        Strategy::Crpc => synthesize_crpc(cs, x, w, z),
        Strategy::CrpcPsq => synthesize_crpc_psq(cs, x, w, z),
    }
}

/// Synthesises the chosen matmul encoding with the output cells *supplied
/// by the caller* instead of freshly allocated: each `y[i][j]` is a linear
/// combination (typically a public instance variable) whose assigned value
/// must already equal the honest product, and the emitted constraints force
/// it to — **per cell**, so every output is independently bound.
///
/// This is the statement-binding variant: with `y` allocated as instance
/// variables, a proof commits to the concrete output matrix, not just the
/// circuit shape. The vanilla strategies bind at no extra cost (their
/// final per-cell sums write directly into `y`); the CRPC strategies add
/// `a*b` per-cell equality constraints on top of the paper counts, because
/// the Z-fold alone is a single public linear relation that a same-fold
/// `Y'` could satisfy (see `crpc::bind_outputs`).
///
/// # Panics
/// Panics if the matrix dimensions are inconsistent or empty, or if `y` is
/// not `a x b`.
pub fn synthesize_matmul_into<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y: &[Vec<LinearCombination<Fr>>],
    strategy: Strategy,
    z: Fr,
) {
    validate_dims(x, w);
    let (a, b) = (x.len(), w[0].len());
    assert!(
        y.len() == a && y.iter().all(|r| r.len() == b),
        "output matrix must be {a} x {b}"
    );
    match strategy {
        Strategy::Vanilla => synthesize_vanilla_into(cs, x, w, y),
        Strategy::VanillaPsq => synthesize_vanilla_psq_into(cs, x, w, y),
        Strategy::Crpc => synthesize_crpc_into(cs, x, w, y, z),
        Strategy::CrpcPsq => synthesize_crpc_psq_into(cs, x, w, y, z),
    }
}

fn validate_dims(x: &[Vec<LinearCombination<Fr>>], w: &[Vec<LinearCombination<Fr>>]) {
    assert!(!x.is_empty() && !w.is_empty(), "matrices must be non-empty");
    let n = x[0].len();
    assert!(
        n > 0 && x.iter().all(|r| r.len() == n),
        "X rows must have equal length"
    );
    assert_eq!(w.len(), n, "inner dimensions must agree");
    let b = w[0].len();
    assert!(
        b > 0 && w.iter().all(|r| r.len() == b),
        "W rows must have equal length"
    );
}

/// Computes `powers[m] = z^m` for `m < count`.
pub(crate) fn powers_of(z: Fr, count: usize) -> Vec<Fr> {
    let mut out = Vec::with_capacity(count);
    let mut cur = Fr::one();
    for _ in 0..count {
        out.push(cur);
        cur *= z;
    }
    out
}

/// Aggregate circuit statistics collected after synthesis; the quantities
/// the paper's §III analyses (constraints for CRPC, left wires / variables
/// for PSQ).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of R1CS constraints.
    pub num_constraints: usize,
    /// Number of variables (constant + instance + witness).
    pub num_variables: usize,
    /// Total distinct left-wire occurrences (`A`-matrix density).
    pub num_left_wires: usize,
    /// Total distinct right-wire occurrences (`B`-matrix density).
    pub num_right_wires: usize,
}

impl CircuitStats {
    /// Collects statistics from a constraint system.
    pub fn of(cs: &ConstraintSystem<Fr>) -> Self {
        CircuitStats {
            num_constraints: cs.num_constraints(),
            num_variables: cs.num_variables(),
            num_left_wires: cs.num_left_wires(),
            num_right_wires: cs.num_right_wires(),
        }
    }
}

/// A matrix-multiplication *statement*: the concrete `X`, `W`, honest
/// product `Y`, strategy and CRPC challenge — everything needed to drive
/// synthesis, with no constraint system built up front.
///
/// This is the lazy, two-pass-native form the runtime proves with: a
/// [`compile_shape`](crate::api::compile_shape) over it is witness-free,
/// and on a warm shape only the witness pass
/// ([`generate_witness`](crate::api::generate_witness)) runs. The eager
/// [`MatMulJob`] wraps one of these plus the legacy single-pass
/// [`ConstraintSystem`].
#[derive(Clone, Debug)]
pub struct MatMulCircuit {
    x: Vec<Vec<Fr>>,
    w: Vec<Vec<Fr>>,
    /// The honest product matrix.
    pub y: Vec<Vec<Fr>>,
    /// `(a, n, b)` dimensions.
    pub dims: (usize, usize, usize),
    /// The strategy used.
    pub strategy: Strategy,
    /// The CRPC challenge (identity for vanilla strategies).
    pub z: Fr,
    /// Whether `Y` is allocated as public instance variables.
    pub outputs_public: bool,
}

impl MatMulCircuit {
    /// Emits the statement into any sink: inputs and (when public) outputs
    /// are allocated, then the strategy's constraints. Pass-oblivious by
    /// construction — the shape pass allocates the same variables without
    /// reading a single value.
    fn emit(&self, cs: &mut dyn ConstraintSink<Fr>) {
        let wants = cs.wants_values();
        let alloc_witness_matrix =
            |cs: &mut dyn ConstraintSink<Fr>, m: &[Vec<Fr>]| -> Vec<Vec<LinearCombination<Fr>>> {
                m.iter()
                    .map(|row| {
                        row.iter()
                            .map(|v| cs.alloc_witness_opt(wants.then_some(*v)).into())
                            .collect()
                    })
                    .collect()
            };
        let x_lcs = alloc_witness_matrix(cs, &self.x);
        let w_lcs = alloc_witness_matrix(cs, &self.w);
        if self.outputs_public {
            let y_lcs: Vec<Vec<LinearCombination<Fr>>> = self
                .y
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|v| cs.alloc_instance_opt(wants.then_some(*v)).into())
                        .collect()
                })
                .collect();
            synthesize_matmul_into(cs, &x_lcs, &w_lcs, &y_lcs, self.strategy, self.z);
        } else {
            let _y_lcs = synthesize_matmul(cs, &x_lcs, &w_lcs, self.strategy, self.z);
        }
    }
}

impl Circuit for MatMulCircuit {
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
        self.emit(sink);
    }

    fn name(&self) -> String {
        format!(
            "matmul {}x{}x{} ({})",
            self.dims.0, self.dims.1, self.dims.2, self.strategy
        )
    }

    fn public_outputs(&self) -> Vec<Fr> {
        if self.outputs_public {
            self.y.iter().flatten().copied().collect()
        } else {
            Vec::new()
        }
    }

    fn declared_publics(&self) -> usize {
        // The matmul *statement* always has a·b outputs, even when the
        // circuit was compiled with them left private — that gap is
        // exactly what the analyzer's `unbound-public` lint reports.
        self.dims.0 * self.dims.2
    }
}

/// A fully synthesised matrix-multiplication statement: the constraint
/// system with its witness, the computed product, and circuit statistics.
///
/// This is the eager (legacy single-pass) product of [`MatMulBuilder`]; the
/// lazy two-pass form is [`MatMulCircuit`]
/// ([`MatMulBuilder::build_circuit_field`] and friends).
#[derive(Clone, Debug)]
pub struct MatMulJob {
    /// The synthesised constraint system (witness included).
    pub cs: ConstraintSystem<Fr>,
    /// `(a, n, b)` dimensions.
    pub dims: (usize, usize, usize),
    /// The strategy used.
    pub strategy: Strategy,
    /// The product matrix computed by the (honest) prover.
    pub y: Vec<Vec<Fr>>,
    /// Circuit statistics.
    pub stats: CircuitStats,
    /// The CRPC challenge that was used (identity for vanilla strategies).
    pub z: Fr,
    /// Whether `Y` was allocated as public instance variables (statement
    /// binding) rather than private witnesses (shape binding only). Named
    /// distinctly from the inherited [`Circuit::public_outputs`] method,
    /// which returns the bound *values*.
    pub outputs_public: bool,
    /// The underlying statement, kept so the job can re-synthesise through
    /// the two-pass pipeline.
    circuit: MatMulCircuit,
}

impl MatMulJob {
    /// The lazy statement form of this job (same inputs, same challenge).
    pub fn circuit(&self) -> &MatMulCircuit {
        &self.circuit
    }
}

impl Circuit for MatMulJob {
    fn synthesize(&self, sink: &mut dyn ConstraintSink<Fr>) {
        self.circuit.emit(sink);
    }

    fn name(&self) -> String {
        Circuit::name(&self.circuit)
    }

    fn public_outputs(&self) -> Vec<Fr> {
        self.cs.instance_assignment().to_vec()
    }

    fn shape_digest(&self) -> [u8; 32] {
        crate::api::circuit_shape_digest(&self.cs)
    }

    fn declared_publics(&self) -> usize {
        self.circuit.declared_publics()
    }
}

/// Builder for matrix-multiplication proving jobs.
#[derive(Clone, Debug)]
pub struct MatMulBuilder {
    a: usize,
    n: usize,
    b: usize,
    strategy: Strategy,
    z_source: ZSource,
    public_outputs: bool,
}

impl MatMulBuilder {
    /// Creates a builder for `Y[a x b] = X[a x n] * W[n x b]`, defaulting to
    /// the full zkVC strategy (CRPC + PSQ) with a transcript-derived `Z` and
    /// private outputs.
    pub fn new(a: usize, n: usize, b: usize) -> Self {
        assert!(a > 0 && n > 0 && b > 0, "dimensions must be positive");
        MatMulBuilder {
            a,
            n,
            b,
            strategy: Strategy::CrpcPsq,
            z_source: ZSource::Transcript,
            public_outputs: false,
        }
    }

    /// Selects the circuit strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// When `true`, allocates `Y` as *public instance* variables, each
    /// bound by its own constraint, so the proof binds the concrete output
    /// matrix (statement-level binding); a proof for the same shape but a
    /// different `Y` then fails verification. When `false` (the default),
    /// `Y` stays a private witness and the proof binds only the circuit
    /// shape. Vanilla strategies keep their constraint counts; CRPC
    /// strategies pay `a*b` extra per-cell binding constraints (see
    /// [`synthesize_matmul_into`]).
    pub fn public_outputs(mut self, public_outputs: bool) -> Self {
        self.public_outputs = public_outputs;
        self
    }

    /// Selects how the CRPC challenge is obtained.
    pub fn z_source(mut self, z_source: ZSource) -> Self {
        self.z_source = z_source;
        self
    }

    /// The `(a, n, b)` dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.a, self.n, self.b)
    }

    /// Builds the job from signed-integer matrices (e.g. quantised model
    /// weights and activations).
    ///
    /// # Panics
    /// Panics if the matrix dimensions do not match the builder.
    pub fn build_integers(&self, x: &[Vec<i64>], w: &[Vec<i64>]) -> MatMulJob {
        Self::eager(self.build_circuit_integers(x, w))
    }

    /// Builds the job with uniformly random matrices (used by the benchmark
    /// harnesses, where only the cost profile matters).
    pub fn build_random<R: Rng + ?Sized>(&self, rng: &mut R) -> MatMulJob {
        Self::eager(self.build_circuit_random(rng))
    }

    /// Builds the job from field-element matrices.
    ///
    /// # Panics
    /// Panics if the matrix dimensions do not match the builder.
    pub fn build_field(&self, x: &[Vec<Fr>], w: &[Vec<Fr>]) -> MatMulJob {
        Self::eager(self.build_circuit_field(x, w))
    }

    /// [`MatMulBuilder::build_integers`], but producing the lazy
    /// [`MatMulCircuit`] statement (no constraint system is synthesised).
    pub fn build_circuit_integers(&self, x: &[Vec<i64>], w: &[Vec<i64>]) -> MatMulCircuit {
        let conv = |m: &[Vec<i64>]| -> Vec<Vec<Fr>> {
            m.iter()
                .map(|row| row.iter().map(|v| Fr::from_i64(*v)).collect())
                .collect()
        };
        self.build_circuit_field(&conv(x), &conv(w))
    }

    /// [`MatMulBuilder::build_random`], but producing the lazy
    /// [`MatMulCircuit`] statement.
    pub fn build_circuit_random<R: Rng + ?Sized>(&self, rng: &mut R) -> MatMulCircuit {
        let x: Vec<Vec<Fr>> = (0..self.a)
            .map(|_| {
                (0..self.n)
                    .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                    .collect()
            })
            .collect();
        let w: Vec<Vec<Fr>> = (0..self.n)
            .map(|_| {
                (0..self.b)
                    .map(|_| Fr::from_u64(rng.gen_range(0..256)))
                    .collect()
            })
            .collect();
        self.build_circuit_field(&x, &w)
    }

    /// [`MatMulBuilder::build_field`], but producing the lazy
    /// [`MatMulCircuit`] statement: the honest product and the CRPC
    /// challenge are computed, and synthesis is deferred to the two-pass
    /// pipeline (shape pass for setup/digests, witness pass for proving).
    ///
    /// # Panics
    /// Panics if the matrix dimensions do not match the builder.
    pub fn build_circuit_field(&self, x: &[Vec<Fr>], w: &[Vec<Fr>]) -> MatMulCircuit {
        assert_eq!(x.len(), self.a, "X row count mismatch");
        assert!(
            x.iter().all(|r| r.len() == self.n),
            "X column count mismatch"
        );
        assert_eq!(w.len(), self.n, "W row count mismatch");
        assert!(
            w.iter().all(|r| r.len() == self.b),
            "W column count mismatch"
        );

        // The honest product.
        let mut y = vec![vec![Fr::zero(); self.b]; self.a];
        for i in 0..self.a {
            for j in 0..self.b {
                let mut acc = Fr::zero();
                for k in 0..self.n {
                    acc += x[i][k] * w[k][j];
                }
                y[i][j] = acc;
            }
        }

        // CRPC challenge.
        let z = match self.z_source {
            ZSource::Fixed(z) => z,
            ZSource::Transcript => {
                let mut t = Transcript::new(b"zkvc-crpc-challenge");
                t.append_u64(b"a", self.a as u64);
                t.append_u64(b"n", self.n as u64);
                t.append_u64(b"b", self.b as u64);
                for row in x {
                    t.append_fields(b"x", row);
                }
                for row in w {
                    t.append_fields(b"w", row);
                }
                for row in &y {
                    t.append_fields(b"y", row);
                }
                t.challenge_field(b"z")
            }
        };

        MatMulCircuit {
            x: x.to_vec(),
            w: w.to_vec(),
            y,
            dims: (self.a, self.n, self.b),
            strategy: self.strategy,
            z,
            outputs_public: self.public_outputs,
        }
    }

    /// Runs the legacy single pass over a statement, producing the eager
    /// job (constraint system + stats) most tests and harnesses consume.
    fn eager(circuit: MatMulCircuit) -> MatMulJob {
        let mut cs = ConstraintSystem::<Fr>::new();
        circuit.emit(&mut cs);
        let stats = CircuitStats::of(&cs);
        MatMulJob {
            cs,
            dims: circuit.dims,
            strategy: circuit.strategy,
            y: circuit.y.clone(),
            stats,
            z: circuit.z,
            outputs_public: circuit.outputs_public,
            circuit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_matrices() -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        // 3x2 * 2x2 example from the paper's Figure 4.
        let x = vec![vec![1i64, 2], vec![3, 4], vec![5, 6]];
        let w = vec![vec![7i64, 8], vec![9, 10]];
        (x, w)
    }

    #[test]
    fn all_strategies_accept_honest_witness() {
        let (x, w) = small_matrices();
        for strategy in Strategy::ALL {
            let job = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .build_integers(&x, &w);
            assert!(job.cs.is_satisfied(), "{strategy:?}");
            // The product is the true product.
            assert_eq!(job.y[0][0], Fr::from_u64(7 + 2 * 9));
            assert_eq!(job.y[2][1], Fr::from_u64(5 * 8 + 6 * 10));
        }
    }

    #[test]
    fn constraint_counts_match_paper_formulas() {
        let (a, n, b) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(1);
        let counts: Vec<(Strategy, usize)> = Strategy::ALL
            .iter()
            .map(|s| {
                let job = MatMulBuilder::new(a, n, b)
                    .strategy(*s)
                    .build_random(&mut rng);
                assert!(job.cs.is_satisfied());
                (*s, job.stats.num_constraints)
            })
            .collect();
        assert_eq!(
            counts[0].1,
            a * b * n + a * b,
            "vanilla: abn products + ab additions"
        );
        assert_eq!(counts[1].1, a * b * n, "vanilla+psq: abn products only");
        assert_eq!(counts[2].1, n + 1, "crpc: n products + 1 fold");
        assert_eq!(counts[3].1, n, "crpc+psq: n products");
    }

    #[test]
    fn psq_reduces_left_wires_and_variables() {
        let (a, n, b) = (4usize, 6usize, 5usize);
        let mut rng = StdRng::seed_from_u64(2);
        let vanilla = MatMulBuilder::new(a, n, b)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng);
        let psq = MatMulBuilder::new(a, n, b)
            .strategy(Strategy::VanillaPsq)
            .build_random(&mut rng);
        assert!(psq.stats.num_left_wires < vanilla.stats.num_left_wires);
        assert!(psq.stats.num_variables <= vanilla.stats.num_variables);

        let crpc = MatMulBuilder::new(a, n, b)
            .strategy(Strategy::Crpc)
            .build_random(&mut rng);
        let crpc_psq = MatMulBuilder::new(a, n, b)
            .strategy(Strategy::CrpcPsq)
            .build_random(&mut rng);
        assert!(crpc_psq.stats.num_variables < crpc.stats.num_variables);
        assert!(crpc_psq.stats.num_constraints < crpc.stats.num_constraints);
    }

    #[test]
    fn figure5_left_wire_example() {
        // The paper's Figure 5: a single dot product of length 3 uses 6 left
        // wires with the long addition but only 3 with PSQ.
        let x = vec![vec![2i64, 3, 4]];
        let w = vec![vec![5i64], vec![6], vec![7]];
        let vanilla = MatMulBuilder::new(1, 3, 1)
            .strategy(Strategy::Vanilla)
            .build_integers(&x, &w);
        let psq = MatMulBuilder::new(1, 3, 1)
            .strategy(Strategy::VanillaPsq)
            .build_integers(&x, &w);
        assert_eq!(vanilla.stats.num_left_wires, 6);
        assert_eq!(psq.stats.num_left_wires, 3);
    }

    #[test]
    fn corrupted_product_rejected_by_every_strategy() {
        let (x, w) = small_matrices();
        for strategy in Strategy::ALL {
            let job = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .build_integers(&x, &w);
            // Find the first witness variable holding a Y value and corrupt it.
            // Y variables are allocated by the strategy after the 6 + 4 input
            // variables; corrupting any later witness must break satisfaction
            // for vanilla strategies, and break the folded identity for CRPC.
            let mut witness = job.cs.witness_assignment().to_vec();
            let idx = witness.len() - 1;
            witness[idx] += Fr::one();
            let mut cs = job.cs.clone();
            cs.set_witness_assignment(witness);
            assert!(
                !cs.is_satisfied(),
                "{strategy:?} accepted a corrupted witness"
            );
        }
    }

    #[test]
    fn crpc_soundness_random_tampering() {
        // Tamper with each Y entry in turn; the CRPC identity must catch it.
        let (x, w) = small_matrices();
        let job = MatMulBuilder::new(3, 2, 2)
            .strategy(Strategy::CrpcPsq)
            .build_integers(&x, &w);
        let num_inputs = 3 * 2 + 2 * 2;
        for y_idx in 0..6 {
            let mut witness = job.cs.witness_assignment().to_vec();
            witness[num_inputs + y_idx] += Fr::from_u64(3);
            let mut cs = job.cs.clone();
            cs.set_witness_assignment(witness);
            assert!(!cs.is_satisfied(), "tampered y[{y_idx}] accepted");
        }
    }

    #[test]
    fn transcript_z_depends_on_statement() {
        let (x, w) = small_matrices();
        let j1 = MatMulBuilder::new(3, 2, 2).build_integers(&x, &w);
        let mut x2 = x.clone();
        x2[0][0] += 1;
        let j2 = MatMulBuilder::new(3, 2, 2).build_integers(&x2, &w);
        assert_ne!(j1.z, j2.z);
        // Fixed z is honoured.
        let j3 = MatMulBuilder::new(3, 2, 2)
            .z_source(ZSource::Fixed(Fr::from_u64(1234)))
            .build_integers(&x, &w);
        assert_eq!(j3.z, Fr::from_u64(1234));
    }

    #[test]
    fn strategies_compose_over_existing_variables() {
        // synthesize_matmul can be chained: Y1 = X*W1 then Y2 = Y1*W2.
        let mut rng = StdRng::seed_from_u64(5);
        let mut cs = ConstraintSystem::<Fr>::new();
        let rand_lc = |cs: &mut ConstraintSystem<Fr>, rng: &mut StdRng| -> LinearCombination<Fr> {
            cs.alloc_witness(Fr::from_u64(rng.gen_range(0..100))).into()
        };
        let x: Vec<Vec<LinearCombination<Fr>>> = (0..2)
            .map(|_| (0..3).map(|_| rand_lc(&mut cs, &mut rng)).collect())
            .collect();
        let w1: Vec<Vec<LinearCombination<Fr>>> = (0..3)
            .map(|_| (0..2).map(|_| rand_lc(&mut cs, &mut rng)).collect())
            .collect();
        let w2: Vec<Vec<LinearCombination<Fr>>> = (0..2)
            .map(|_| (0..2).map(|_| rand_lc(&mut cs, &mut rng)).collect())
            .collect();
        let y1 = synthesize_matmul(&mut cs, &x, &w1, Strategy::CrpcPsq, Fr::from_u64(99991));
        let y2 = synthesize_matmul(&mut cs, &y1, &w2, Strategy::CrpcPsq, Fr::from_u64(77773));
        assert_eq!(y2.len(), 2);
        assert_eq!(y2[0].len(), 2);
        assert!(cs.is_satisfied());
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn dimension_mismatch_panics() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x: Vec<Vec<LinearCombination<Fr>>> =
            vec![vec![cs.alloc_witness(Fr::one()).into(); 3]; 2];
        let w: Vec<Vec<LinearCombination<Fr>>> =
            vec![vec![cs.alloc_witness(Fr::one()).into(); 2]; 2];
        synthesize_matmul(&mut cs, &x, &w, Strategy::Vanilla, Fr::one());
    }

    #[test]
    fn public_outputs_constraint_counts() {
        // Exposing Y as instance variables keeps the vanilla counts
        // unchanged (their per-cell sums write into the public cells
        // directly) and adds exactly a*b per-cell binding constraints for
        // the CRPC strategies — the price of sound statement binding, and
        // still O(n + ab) vs the vanilla O(abn).
        let (a, n, b) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(8);
        let expected = [
            (Strategy::Vanilla, a * b * n + a * b),
            (Strategy::VanillaPsq, a * b * n),
            (Strategy::Crpc, n + 1 + a * b),
            (Strategy::CrpcPsq, n + a * b),
        ];
        for (strategy, count) in expected {
            let job = MatMulBuilder::new(a, n, b)
                .strategy(strategy)
                .public_outputs(true)
                .build_random(&mut rng);
            assert!(job.cs.is_satisfied(), "{strategy:?}");
            assert!(job.outputs_public);
            assert_eq!(job.stats.num_constraints, count, "{strategy:?}");
            assert_eq!(job.cs.num_instance(), a * b, "{strategy:?}");
            // The instance assignment is exactly the flattened product.
            let flat: Vec<Fr> = job.y.iter().flatten().copied().collect();
            assert_eq!(job.cs.instance_assignment(), &flat[..], "{strategy:?}");
        }
    }

    #[test]
    fn tampered_public_output_breaks_satisfiability() {
        let (x, w) = small_matrices();
        for strategy in Strategy::ALL {
            let job = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .public_outputs(true)
                .build_integers(&x, &w);
            assert!(job.cs.is_satisfied(), "{strategy:?}");
            for idx in 0..6 {
                let mut instance = job.cs.instance_assignment().to_vec();
                instance[idx] += Fr::one();
                let mut cs = job.cs.clone();
                cs.set_instance_assignment(instance);
                assert!(
                    !cs.is_satisfied(),
                    "{strategy:?} accepted a tampered public y[{idx}]"
                );
            }
        }
    }

    #[test]
    fn fold_preserving_tamper_breaks_public_crpc_outputs() {
        // The CRPC fold `sum Z^{i*b+j} y_ij` is a single public linear
        // relation with a publicly known Z, so `y_0 += Z, y_1 -= 1` leaves
        // the fold unchanged. Without the per-cell binding constraints
        // such a compensated tamper would still satisfy the circuit —
        // regression test for the fold-only binding gap.
        let (x, w) = small_matrices();
        for strategy in [Strategy::Crpc, Strategy::CrpcPsq] {
            let job = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .public_outputs(true)
                .build_integers(&x, &w);
            assert!(job.cs.is_satisfied(), "{strategy:?}");
            let mut instance = job.cs.instance_assignment().to_vec();
            // coeff(y[0]) = Z^0 = 1, coeff(y[1]) = Z^1: net fold delta is
            // 1*Z + Z*(-1) = 0.
            instance[0] += job.z;
            instance[1] -= Fr::one();
            let mut cs = job.cs.clone();
            cs.set_instance_assignment(instance);
            assert!(
                !cs.is_satisfied(),
                "{strategy:?} accepted a fold-preserving tamper"
            );
        }
    }

    #[test]
    fn public_and_private_outputs_compute_identical_products() {
        let (x, w) = small_matrices();
        for strategy in Strategy::ALL {
            let private = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .build_integers(&x, &w);
            let public = MatMulBuilder::new(3, 2, 2)
                .strategy(strategy)
                .public_outputs(true)
                .build_integers(&x, &w);
            assert_eq!(private.y, public.y, "{strategy:?}");
            // Vanilla public-output circuits drop the Y witnesses; CRPC
            // ones keep them (the fold runs over witnesses, each pinned to
            // a public cell), so witness counts never grow.
            assert!(
                public.cs.num_witness() <= private.cs.num_witness(),
                "{strategy:?}"
            );
            if !strategy.uses_crpc() {
                assert!(
                    public.cs.num_witness() < private.cs.num_witness(),
                    "{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn powers_helper() {
        let p = powers_of(Fr::from_u64(3), 5);
        assert_eq!(
            p,
            vec![
                Fr::one(),
                Fr::from_u64(3),
                Fr::from_u64(9),
                Fr::from_u64(27),
                Fr::from_u64(81)
            ]
        );
    }
}
