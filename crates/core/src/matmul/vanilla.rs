//! The vanilla matrix-multiplication circuit and its PSQ variant.
//!
//! Emission is written against [`ConstraintSink`], so one copy of each
//! loop serves the legacy single pass, the witness-free shape pass and the
//! witness pass.

use zkvc_ff::{Field, Fr};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SinkExt};

/// Vanilla encoding: one multiplication constraint per scalar product
/// `x_ik * w_kj`, followed by one long-addition constraint per output
/// element summing the `n` intermediate products (Figure 4(a) / Figure 5(a)
/// of the paper).
///
/// Cost: `a*b*n + a*b` constraints and `a*b*n + a*b` fresh witness
/// variables; the addition rows carry `n` left wires each.
pub fn synthesize_vanilla<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
) -> Vec<Vec<LinearCombination<Fr>>> {
    vanilla_core(cs, x, w, None)
}

/// Vanilla products with Prefix-Sum Query accumulation (Figure 5(b)): the
/// running sums `acc_k = acc_{k-1} + x_ik * w_kj` are stored instead of the
/// individual products, so the long addition row disappears and each
/// constraint keeps a single left wire.
///
/// Cost: `a*b*n` constraints and `a*b*n` fresh witness variables; the final
/// prefix sum *is* the output element.
pub fn synthesize_vanilla_psq<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
) -> Vec<Vec<LinearCombination<Fr>>> {
    vanilla_psq_core(cs, x, w, None)
}

/// [`synthesize_vanilla`] with caller-supplied output cells: the long
/// addition writes directly into `y_out[i][j]` (typically a public instance
/// variable holding the honest product) instead of a fresh witness. Same
/// `a*b*n + a*b` constraints, `a*b` fewer witness variables.
pub fn synthesize_vanilla_into<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: &[Vec<LinearCombination<Fr>>],
) {
    vanilla_core(cs, x, w, Some(y_out));
}

/// [`synthesize_vanilla_psq`] with caller-supplied output cells: the last
/// prefix-sum constraint writes `y_out[i][j] - acc_{n-2}` instead of
/// allocating the final accumulator. Same `a*b*n` constraints.
pub fn synthesize_vanilla_psq_into<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: &[Vec<LinearCombination<Fr>>],
) {
    vanilla_psq_core(cs, x, w, Some(y_out));
}

/// The one copy of the vanilla constraint-emission loop: products are
/// computed (only when the sink carries values) and their witnesses
/// allocated exactly once; the long addition writes into the supplied cell
/// when `y_out` is given, or into a fresh witness otherwise.
fn vanilla_core<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: Option<&[Vec<LinearCombination<Fr>>]>,
) -> Vec<Vec<LinearCombination<Fr>>> {
    let n = w.len();
    let b = w[0].len();
    let mut y = Vec::with_capacity(x.len());
    for (i, xi) in x.iter().enumerate() {
        let mut row = Vec::with_capacity(b);
        for j in 0..b {
            let mut sum_val = cs.wants_values().then(Fr::zero);
            let mut sum_lc = LinearCombination::zero();
            for (k, wk) in w.iter().enumerate().take(n) {
                let val = cs.lc_product(&xi[k], &wk[j]);
                if let (Some(acc), Some(v)) = (sum_val.as_mut(), val.as_ref()) {
                    *acc += *v;
                }
                let p = cs.alloc_witness_opt(val);
                cs.enforce_named(xi[k].clone(), wk[j].clone(), p.into(), "vanilla product");
                sum_lc.push(p, Fr::one());
            }
            // long addition: (sum of products) * 1 = y_ij
            let y_ij = match y_out {
                Some(out) => out[i][j].clone(),
                None => cs.alloc_witness_opt(sum_val).into(),
            };
            cs.enforce_named(
                sum_lc,
                LinearCombination::constant(Fr::one()),
                y_ij.clone(),
                "vanilla long addition",
            );
            row.push(y_ij);
        }
        y.push(row);
    }
    y
}

/// The one copy of the PSQ constraint-emission loop: each product feeds a
/// prefix-sum accumulator exactly once; the final constraint writes into
/// the supplied cell when `y_out` is given, or into a fresh accumulator
/// witness (which *is* the output) otherwise.
fn vanilla_psq_core<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &[Vec<LinearCombination<Fr>>],
    w: &[Vec<LinearCombination<Fr>>],
    y_out: Option<&[Vec<LinearCombination<Fr>>]>,
) -> Vec<Vec<LinearCombination<Fr>>> {
    let n = w.len();
    let b = w[0].len();
    let mut y = Vec::with_capacity(x.len());
    for (i, xi) in x.iter().enumerate() {
        let mut row = Vec::with_capacity(b);
        for j in 0..b {
            let mut prev_lc = LinearCombination::zero();
            let mut prev_val = cs.wants_values().then(Fr::zero);
            let mut last = LinearCombination::zero();
            for (k, wk) in w.iter().enumerate().take(n) {
                // last step with a supplied cell: x_ik * w_kj = y_ij - acc_{n-2}
                if k + 1 == n {
                    if let Some(out) = y_out {
                        cs.enforce_named(
                            xi[k].clone(),
                            wk[j].clone(),
                            out[i][j].clone() - &prev_lc,
                            "psq final product",
                        );
                        last = out[i][j].clone();
                        continue;
                    }
                }
                let acc_val = prev_val.and_then(|p| cs.lc_product(&xi[k], &wk[j]).map(|t| p + t));
                let acc = cs.alloc_witness_opt(acc_val);
                // x_ik * w_kj = acc_k - acc_{k-1}
                cs.enforce_named(
                    xi[k].clone(),
                    wk[j].clone(),
                    LinearCombination::from(acc) - &prev_lc,
                    "psq product",
                );
                prev_lc = acc.into();
                prev_val = acc_val;
                last = acc.into();
            }
            row.push(last);
        }
        y.push(row);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::PrimeField;
    use zkvc_r1cs::ConstraintSystem;

    type LcMatrix = Vec<Vec<LinearCombination<Fr>>>;

    fn inputs(cs: &mut ConstraintSystem<Fr>) -> (LcMatrix, LcMatrix) {
        // X = [[1,2,3],[4,5,6]]  W = [[1,4],[2,5],[3,6]]
        let x_vals = [[1u64, 2, 3], [4, 5, 6]];
        let w_vals = [[1u64, 4], [2, 5], [3, 6]];
        let x = x_vals
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| cs.alloc_witness(Fr::from_u64(*v)).into())
                    .collect()
            })
            .collect();
        let w = w_vals
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| cs.alloc_witness(Fr::from_u64(*v)).into())
                    .collect()
            })
            .collect();
        (x, w)
    }

    #[test]
    fn vanilla_computes_correct_values() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let (x, w) = inputs(&mut cs);
        let y = synthesize_vanilla(&mut cs, &x, &w);
        assert!(cs.is_satisfied());
        // Y = [[14, 32], [32, 77]]
        assert_eq!(cs.eval_lc(&y[0][0]), Fr::from_u64(14));
        assert_eq!(cs.eval_lc(&y[0][1]), Fr::from_u64(32));
        assert_eq!(cs.eval_lc(&y[1][0]), Fr::from_u64(32));
        assert_eq!(cs.eval_lc(&y[1][1]), Fr::from_u64(77));
        // 2*2*3 products + 2*2 additions
        assert_eq!(cs.num_constraints(), 16);
    }

    #[test]
    fn psq_matches_vanilla_values_with_fewer_wires() {
        let mut cs_v = ConstraintSystem::<Fr>::new();
        let (x, w) = inputs(&mut cs_v);
        let y_v = synthesize_vanilla(&mut cs_v, &x, &w);

        let mut cs_p = ConstraintSystem::<Fr>::new();
        let (x2, w2) = inputs(&mut cs_p);
        let y_p = synthesize_vanilla_psq(&mut cs_p, &x2, &w2);

        assert!(cs_v.is_satisfied());
        assert!(cs_p.is_satisfied());
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(cs_v.eval_lc(&y_v[i][j]), cs_p.eval_lc(&y_p[i][j]));
            }
        }
        assert_eq!(cs_p.num_constraints(), 12); // abn only
        assert!(cs_p.num_left_wires() < cs_v.num_left_wires());
        assert!(cs_p.num_variables() < cs_v.num_variables());
    }

    #[test]
    fn psq_rejects_tampered_prefix_sum() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let (x, w) = inputs(&mut cs);
        synthesize_vanilla_psq(&mut cs, &x, &w);
        assert!(cs.is_satisfied());
        let mut witness = cs.witness_assignment().to_vec();
        // first prefix-sum variable sits right after the 12 input variables
        witness[12] += Fr::one();
        cs.set_witness_assignment(witness);
        assert!(!cs.is_satisfied());
    }
}
