//! # zkvc-core
//!
//! The paper's contribution: efficient zk-SNARK circuits for matrix
//! multiplication and the non-linear approximations needed to verify
//! Transformer inference.
//!
//! * [`matmul`] — the four circuit strategies compared throughout the
//!   paper's evaluation: the vanilla `O(abn)`-constraint circuit, the
//!   vanilla circuit with **PSQ** (Prefix-Sum Query) accumulation, **CRPC**
//!   (Constraint-Reduced Polynomial Circuits) with `O(n)` constraints, and
//!   CRPC + PSQ (the full zkVC construction).
//! * [`nonlinear`] — SoftMax (max-normalisation + clipped Taylor
//!   exponential), GELU (quadratic polynomial) and reciprocal-square-root
//!   gadgets, all over fixed-point arithmetic.
//! * [`fixed`] — NITI-style fixed-point quantisation shared with `zkvc-nn`.
//! * [`api`] — the circuit-generic proving API: the [`Circuit`] and
//!   [`ProofSystem`] traits, their Groth16/Spartan implementations, and the
//!   canonical circuit-shape digest.
//! * [`backend`] — the [`Backend`] enum, a `Copy` dispatcher over the two
//!   [`ProofSystem`] implementations, with per-run cost metrics used by the
//!   benchmark harnesses.
//! * [`schemes`] — the qualitative feature matrix of Table I.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_core::matmul::{MatMulBuilder, Strategy};
//! use zkvc_core::backend::Backend;
//! use zkvc_ff::{Fr, PrimeField};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Y = X * W for a small integer matrix multiplication.
//! let x = vec![vec![1i64, 2], vec![3, 4]];
//! let w = vec![vec![5i64, 6], vec![7, 8]];
//! let job = MatMulBuilder::new(2, 2, 2)
//!     .strategy(Strategy::CrpcPsq)
//!     .build_integers(&x, &w);
//! let artifacts = Backend::Groth16.prove(&job, &mut rng);
//! assert!(Backend::Groth16.verify(&job, &artifacts));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod api;
pub mod backend;
pub mod fixed;
pub mod matmul;
pub mod nonlinear;
pub mod schemes;

pub use api::{circuit_shape_digest, Circuit, ProofSystem};
pub use backend::{
    Backend, ProofArtifacts, ProveMetrics, ProverKey, UnknownTokenError, VerifierKey,
};
pub use fixed::FixedPointConfig;
pub use matmul::{MatMulBuilder, MatMulJob, Strategy};
