//! Fixed-point quantisation (NITI-style integer-only arithmetic).
//!
//! The paper quantises Transformer weights and activations to integers so
//! the whole inference runs in ZKP-friendly integer arithmetic. Values are
//! stored as `round(v * 2^fraction_bits)`; multiplication doubles the scale
//! and is followed by a truncating rescale, which inside a circuit is the
//! division-with-remainder gadget in [`crate::nonlinear`].

use zkvc_ff::{Fr, PrimeField};

/// Configuration of the fixed-point representation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FixedPointConfig {
    /// Number of fractional bits (`f`); the scale is `2^f`.
    pub fraction_bits: u32,
    /// Total signed bit-width values are assumed to fit in (used to size the
    /// comparison/range gadgets).
    pub total_bits: u32,
}

impl Default for FixedPointConfig {
    fn default() -> Self {
        // 8 fractional bits and 32-bit accumulators mirror the NITI-style
        // integer training/inference setup referenced by the paper.
        FixedPointConfig {
            fraction_bits: 8,
            total_bits: 32,
        }
    }
}

impl FixedPointConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics unless `0 < fraction_bits < total_bits <= 62`.
    pub fn new(fraction_bits: u32, total_bits: u32) -> Self {
        assert!(fraction_bits > 0 && fraction_bits < total_bits && total_bits <= 62);
        FixedPointConfig {
            fraction_bits,
            total_bits,
        }
    }

    /// The scale factor `2^f`.
    pub fn scale(&self) -> i64 {
        1i64 << self.fraction_bits
    }

    /// Quantises a real value to fixed point.
    pub fn quantize(&self, v: f64) -> i64 {
        (v * self.scale() as f64).round() as i64
    }

    /// Dequantises a fixed-point value back to a real number.
    pub fn dequantize(&self, v: i64) -> f64 {
        v as f64 / self.scale() as f64
    }

    /// Rescales a double-scale product (`2^{2f}`) back to single scale with
    /// truncation toward negative infinity (matching the in-circuit
    /// division gadget).
    pub fn rescale(&self, v: i64) -> i64 {
        v.div_euclid(self.scale())
    }

    /// Fixed-point multiplication of two quantised values.
    pub fn mul(&self, a: i64, b: i64) -> i64 {
        self.rescale(a * b)
    }

    /// The field representation of a quantised value.
    pub fn to_field(&self, v: i64) -> Fr {
        Fr::from_i64(v)
    }

    /// Quantises a whole vector.
    pub fn quantize_vec(&self, vs: &[f64]) -> Vec<i64> {
        vs.iter().map(|v| self.quantize(*v)).collect()
    }

    /// Reference (non-circuit) SoftMax over quantised inputs, mirroring the
    /// in-circuit approximation: max-normalise, clipped Taylor exponential
    /// `(1 + x/2^t)^{2^t}`, then normalise. Used for witness generation and
    /// for accuracy cross-checks in tests.
    pub fn softmax_reference(&self, xs: &[i64], taylor_log2: u32, clip_threshold: i64) -> Vec<i64> {
        let max = xs.iter().copied().max().expect("non-empty input");
        let exps: Vec<i64> = xs
            .iter()
            .map(|x| self.exp_reference(x - max, taylor_log2, clip_threshold))
            .collect();
        let sum: i64 = exps.iter().sum();
        if sum == 0 {
            return vec![0; xs.len()];
        }
        exps.iter()
            .map(|e| (e * self.scale()).div_euclid(sum))
            .collect()
    }

    /// Reference clipped Taylor exponential on non-positive fixed-point
    /// inputs: `e^x ~= (1 + x/2^t)^{2^t}` for `x in [clip_threshold, 0]`,
    /// `0` below the threshold.
    pub fn exp_reference(&self, x: i64, taylor_log2: u32, clip_threshold: i64) -> i64 {
        debug_assert!(
            x <= 0,
            "exp approximation is defined on non-positive inputs"
        );
        if x < clip_threshold {
            return 0;
        }
        // base = 1 + x / 2^t  (fixed point)
        let mut p = self.scale() + x.div_euclid(1i64 << taylor_log2);
        if p < 0 {
            p = 0;
        }
        // square t times, rescaling after each squaring
        for _ in 0..taylor_log2 {
            p = self.rescale(p * p);
        }
        p
    }

    /// Reference GELU approximation `x^2/8 + x/4 + 1/2` (paper §III-C),
    /// in fixed point.
    pub fn gelu_reference(&self, x: i64) -> i64 {
        let s = self.scale();
        // (x^2 + 2 s x + 4 s^2) / (8 s)
        (x * x + 2 * s * x + 4 * s * s).div_euclid(8 * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip() {
        let cfg = FixedPointConfig::default();
        for v in [-3.5, -0.25, 0.0, 0.5, 1.0, 2.75, 10.125] {
            let q = cfg.quantize(v);
            assert!((cfg.dequantize(q) - v).abs() < 1.0 / cfg.scale() as f64);
        }
    }

    #[test]
    fn fixed_mul_approximates_real_mul() {
        let cfg = FixedPointConfig::default();
        let a = cfg.quantize(1.5);
        let b = cfg.quantize(-2.25);
        let prod = cfg.mul(a, b);
        assert!((cfg.dequantize(prod) - (-3.375)).abs() < 0.02);
    }

    #[test]
    fn rescale_truncates_toward_negative_infinity() {
        let cfg = FixedPointConfig::new(4, 16); // scale 16
        assert_eq!(cfg.rescale(33), 2);
        assert_eq!(cfg.rescale(-33), -3);
        assert_eq!(cfg.rescale(-16), -1);
    }

    #[test]
    fn exp_reference_behaviour() {
        let cfg = FixedPointConfig::default();
        let clip = -8 * cfg.scale();
        // e^0 = 1
        assert_eq!(cfg.exp_reference(0, 5, clip), cfg.scale());
        // decreasing in |x|
        let e1 = cfg.exp_reference(cfg.quantize(-0.5), 5, clip);
        let e2 = cfg.exp_reference(cfg.quantize(-1.0), 5, clip);
        let e3 = cfg.exp_reference(cfg.quantize(-2.0), 5, clip);
        assert!(e1 > e2 && e2 > e3);
        // roughly e^{-1} ~ 0.37
        let approx = cfg.dequantize(e2);
        assert!((approx - 0.3678).abs() < 0.05, "e^-1 approx {approx}");
        // clipped below threshold
        assert_eq!(cfg.exp_reference(clip - 1, 5, clip), 0);
    }

    #[test]
    fn softmax_reference_sums_to_one() {
        let cfg = FixedPointConfig::default();
        let clip = -8 * cfg.scale();
        let xs: Vec<i64> = [-1.0f64, 0.5, 2.0, 0.0]
            .iter()
            .map(|v| cfg.quantize(*v))
            .collect();
        let sm = cfg.softmax_reference(&xs, 5, clip);
        let total: i64 = sm.iter().sum();
        // sums to ~1.0 (within truncation error of one LSB per element)
        assert!((total - cfg.scale()).abs() <= xs.len() as i64);
        // monotonic in the input
        assert!(sm[2] > sm[1] && sm[1] > sm[3] && sm[3] > sm[0]);
    }

    #[test]
    fn gelu_reference_shape() {
        let cfg = FixedPointConfig::default();
        // GELU(0) ~ 0.5 under this approximation
        assert_eq!(cfg.gelu_reference(0), cfg.scale() / 2);
        // larger inputs grow roughly quadratically
        let g1 = cfg.gelu_reference(cfg.quantize(1.0));
        let g2 = cfg.gelu_reference(cfg.quantize(2.0));
        assert!(g2 > g1);
        assert!((cfg.dequantize(g1) - 0.875).abs() < 0.02);
    }
}
