//! Verified reciprocal-square-root, the only non-arithmetic piece of
//! LayerNorm.
//!
//! The prover supplies `s ~= 2^f / sqrt(v)` as a witness; the circuit checks
//! `s^2 * v` is within one unit of scale of `2^(3f)` (the fixed-point value
//! of 1 after accounting for the three multiplications), which pins `s` to
//! the correctly rounded reciprocal square root.

use zkvc_ff::{Field, Fr, PrimeField};
use zkvc_r1cs::gadgets::greater_equal;
use zkvc_r1cs::{ConstraintSink, LinearCombination, SynthesisError, Variable};

use crate::fixed::FixedPointConfig;

use super::division::unsigned_value;

/// Synthesises `s = round(2^f / sqrt(v))` for a strictly positive
/// fixed-point variance `v`, returning the output variable.
///
/// Soundness: the constraints enforce `|s^2 * v - 2^(3f)| <= s*v + v`,
/// a window that only the integers adjacent to the true reciprocal square
/// root can satisfy (the output is pinned to within one unit in the last
/// place, which is the same guarantee the reference fixed-point
/// implementation provides).
///
/// # Errors
/// Returns a range error if `v` is zero or out of range.
pub fn synthesize_rsqrt<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    v: &LinearCombination<Fr>,
    cfg: &FixedPointConfig,
) -> Result<Variable, SynthesisError> {
    let bits = cfg.total_bits as usize;
    let f = cfg.fraction_bits;
    // Witness hint: s = round(2^f / sqrt(v / 2^f)) = round(2^(3f/2) / sqrt(v)).
    let hint = match cs.lc_value(v) {
        Some(value) => {
            let v_val = unsigned_value(value, 2 * bits)?;
            if v_val == 0 {
                return Err(SynthesisError::ValueOutOfRange("rsqrt of zero"));
            }
            let scale = cfg.scale() as f64;
            let s_val = (scale * scale * scale).sqrt() / (v_val as f64).sqrt();
            Some((Fr::from_i64(s_val.round() as i64), value))
        }
        None => None,
    };
    let s = cs.alloc_witness_opt(hint.map(|(s, _)| s));

    // t = s^2 (one constraint), u = t * v (one constraint)
    let t_val = hint.map(|(s, _)| s * s);
    let t = cs.alloc_witness_opt(t_val);
    cs.enforce_named(s.into(), s.into(), t.into(), "rsqrt square");
    let u = cs.alloc_witness_opt(hint.and_then(|(_, v_val)| t_val.map(|t| t * v_val)));
    cs.enforce_named(t.into(), v.clone(), u.into(), "rsqrt product");

    // Rounding window: |u - 2^(3f)| <= s*v + v. The honest rounded witness
    // satisfies it (|s^2 v - 2^(3f)| <= (2 s + 1/2) * v / 2 < s*v + v) and
    // any s off by two or more units violates it.
    let target = Fr::from_u64(2).pow(&[3 * f as u64]);
    let m = cs.alloc_witness_opt(hint.map(|(s, v_val)| s * v_val));
    cs.enforce_named(s.into(), v.clone(), m.into(), "rsqrt tolerance product");
    let tol = LinearCombination::from(m) + v;
    let diff = LinearCombination::from(u) - LinearCombination::constant(target);
    // -tol <= diff <= tol
    let upper = greater_equal(
        cs,
        &(tol.clone() - diff.clone()),
        &LinearCombination::zero(),
        2 * bits,
    )?;
    let lower = greater_equal(cs, &(tol + diff), &LinearCombination::zero(), 2 * bits)?;
    for bit in [upper, lower] {
        cs.enforce_named(
            bit.into(),
            LinearCombination::constant(Fr::one()),
            LinearCombination::constant(Fr::one()),
            "rsqrt tolerance",
        );
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_r1cs::ConstraintSystem;

    #[test]
    fn rsqrt_matches_float_reference() {
        let cfg = FixedPointConfig::default();
        for var_real in [1.0f64, 2.0, 4.0, 10.0, 100.0, 1000.0] {
            let vq = cfg.quantize(var_real);
            let mut cs = ConstraintSystem::<Fr>::new();
            let v = cs.alloc_witness(Fr::from_i64(vq));
            let s = synthesize_rsqrt(&mut cs, &v.into(), &cfg).unwrap();
            assert!(cs.is_satisfied(), "var={var_real}");
            let got =
                cfg.dequantize(super::super::division::signed_value(cs.value(s), 40).unwrap());
            let expect = 1.0 / var_real.sqrt();
            assert!(
                (got - expect).abs() < 0.05,
                "var={var_real}: got {got}, want {expect}"
            );
        }
    }

    #[test]
    fn rsqrt_of_zero_rejected() {
        let cfg = FixedPointConfig::default();
        let mut cs = ConstraintSystem::<Fr>::new();
        let v = cs.alloc_witness(Fr::from_u64(0));
        assert!(synthesize_rsqrt(&mut cs, &v.into(), &cfg).is_err());
    }

    #[test]
    fn rsqrt_far_off_witness_rejected() {
        let cfg = FixedPointConfig::default();
        let mut cs = ConstraintSystem::<Fr>::new();
        let v = cs.alloc_witness(Fr::from_i64(cfg.quantize(4.0)));
        let s = synthesize_rsqrt(&mut cs, &v.into(), &cfg).unwrap();
        assert!(cs.is_satisfied());
        let Variable::Witness(idx) = s else {
            unreachable!()
        };
        // Double the claimed reciprocal sqrt; the tolerance window must
        // reject it (the dependent witnesses are left stale, which is what a
        // lazy cheating prover would produce).
        let mut w = cs.witness_assignment().to_vec();
        w[idx] = w[idx] + w[idx];
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }
}
