//! Non-linear function approximations as R1CS gadgets (paper §III-C).
//!
//! ZKP constraint systems only speak addition and multiplication, so the
//! SoftMax and GELU layers of a Transformer are verified through arithmetic
//! approximations:
//!
//! * SoftMax — inputs are max-normalised (the max itself is verified with a
//!   comparison + membership check), the exponential is approximated on
//!   non-positive inputs by the clipped Taylor form `(1 + x/2^t)^{2^t}`, and
//!   the final normalisation is a verified integer division.
//! * GELU — the quadratic polynomial `x^2/8 + x/4 + 1/2`.
//! * LayerNorm support — a verified reciprocal-square-root gadget.
//!
//! All gadgets work on fixed-point values (see [`crate::fixed`]): scale
//! `2^f`, signed magnitudes bounded by `2^(total_bits-1)`.

mod division;
mod gelu;
mod norm;
mod softmax;

pub use division::{div_by_const_pow2, div_floor};
pub use gelu::synthesize_gelu;
pub use norm::synthesize_rsqrt;
pub use softmax::{synthesize_exp_neg, synthesize_softmax, SoftmaxConfig};
