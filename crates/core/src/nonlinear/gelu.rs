//! The verified GELU approximation `GELU(x) ~= x^2/8 + x/4 + 1/2`
//! (paper §III-C).

use zkvc_ff::{Fr, PrimeField};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SinkExt, SynthesisError, Variable};

use crate::fixed::FixedPointConfig;

use super::division::div_by_const_pow2;

/// Synthesises the quadratic GELU approximation over a fixed-point input,
/// returning the output variable (same scale as the input).
///
/// The numerator `x^2 + 2*s*x + 4*s^2` (with `s = 2^f`) is formed with one
/// multiplication constraint; dividing by `8s = 2^(f+3)` is a verified
/// power-of-two division.
///
/// # Errors
/// Propagates range errors if the value exceeds the configured bit-width.
pub fn synthesize_gelu<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LinearCombination<Fr>,
    cfg: &FixedPointConfig,
) -> Result<Variable, SynthesisError> {
    let bits = cfg.total_bits as usize;
    let s = cfg.scale();

    // x^2
    let sq_val = cs.lc_product(x, x);
    let sq = cs.alloc_witness_opt(sq_val);
    cs.enforce_named(x.clone(), x.clone(), sq.into(), "gelu square");

    // numerator = x^2 + 2 s x + 4 s^2
    let numerator = LinearCombination::from(sq)
        + x.scale(&Fr::from_i64(2 * s))
        + LinearCombination::constant(Fr::from_i64(4 * s * s));

    // divide by 8 s = 2^(f+3)
    let out = div_by_const_pow2(cs, &numerator, cfg.fraction_bits + 3, 2 * bits)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonlinear::division::signed_value;
    use zkvc_r1cs::ConstraintSystem;

    #[test]
    fn gelu_matches_reference() {
        let cfg = FixedPointConfig::default();
        for x_real in [-3.0f64, -1.5, -0.5, 0.0, 0.5, 1.0, 2.0, 3.5] {
            let xq = cfg.quantize(x_real);
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_i64(xq));
            let g = synthesize_gelu(&mut cs, &x.into(), &cfg).unwrap();
            assert!(cs.is_satisfied(), "x={x_real}");
            assert_eq!(
                cs.value(g),
                Fr::from_i64(cfg.gelu_reference(xq)),
                "x={x_real}"
            );
        }
    }

    #[test]
    fn gelu_is_close_to_polynomial_target_near_zero() {
        // The paper's approximation targets the true GELU near the origin.
        let cfg = FixedPointConfig::default();
        for x_real in [-0.5f64, 0.0, 0.5, 1.0] {
            let xq = cfg.quantize(x_real);
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_i64(xq));
            let g = synthesize_gelu(&mut cs, &x.into(), &cfg).unwrap();
            let got = cfg.dequantize(signed_value(cs.value(g), 32).unwrap());
            let poly = x_real * x_real / 8.0 + x_real / 4.0 + 0.5;
            assert!(
                (got - poly).abs() < 0.02,
                "x={x_real}: got {got}, poly {poly}"
            );
        }
    }

    #[test]
    fn gelu_soundness() {
        let cfg = FixedPointConfig::default();
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_i64(cfg.quantize(1.25)));
        let g = synthesize_gelu(&mut cs, &x.into(), &cfg).unwrap();
        assert!(cs.is_satisfied());
        let Variable::Witness(idx) = g else {
            unreachable!()
        };
        let mut w = cs.witness_assignment().to_vec();
        w[idx] += Fr::from_u64(1);
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }
}
