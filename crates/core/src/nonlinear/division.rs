//! Verified integer division gadgets — the workhorse of every fixed-point
//! rescaling step.

use zkvc_ff::{Field, Fr, PrimeField};
use zkvc_r1cs::gadgets::{bit_decompose, greater_equal};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SynthesisError, Variable};

/// Computes `q = floor(value / 2^shift)` for a signed fixed-point `value`
/// with `|value| < 2^(num_bits - 1)`, returning the quotient variable.
///
/// Constraints enforce `value = q * 2^shift + r` with `0 <= r < 2^shift`
/// and `|q| < 2^(num_bits - 1)`, which pins down Euclidean division
/// (truncation toward negative infinity) uniquely.
///
/// # Errors
/// Returns a range error if the assigned value exceeds the stated bound.
pub fn div_by_const_pow2<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    value: &LinearCombination<Fr>,
    shift: u32,
    num_bits: usize,
) -> Result<Variable, SynthesisError> {
    let divisor = 1i64 << shift;
    let quot_rem = match cs.lc_value(value) {
        Some(v) => {
            let val = signed_value(v, num_bits)?;
            Some((val.div_euclid(divisor), val.rem_euclid(divisor)))
        }
        None => None,
    };

    let q = cs.alloc_witness_opt(quot_rem.map(|(q, _)| Fr::from_i64(q)));
    let r = cs.alloc_witness_opt(quot_rem.map(|(_, r)| Fr::from_i64(r)));

    // value = q * 2^shift + r
    let two_pow = Fr::from_u64(2).pow(&[shift as u64]);
    cs.enforce_named(
        LinearCombination::from(q) * two_pow + LinearCombination::from(r) - value,
        LinearCombination::constant(Fr::one()),
        LinearCombination::zero(),
        "div_pow2 identity",
    );
    // 0 <= r < 2^shift
    bit_decompose(cs, &r.into(), shift as usize)?;
    // |q| < 2^(num_bits-1): decompose q + 2^(num_bits-1) into num_bits bits
    let offset = Fr::from_u64(2).pow(&[(num_bits - 1) as u64]);
    bit_decompose(
        cs,
        &(LinearCombination::from(q) + LinearCombination::constant(offset)),
        num_bits,
    )?;
    Ok(q)
}

/// Computes `q = floor(numerator / denominator)` for a non-negative
/// numerator and a strictly positive denominator, both `< 2^(num_bits-1)`.
///
/// Constraints: `numerator = q * denominator + r`, `0 <= r < denominator`
/// and `0 <= q < 2^num_bits`.
///
/// # Errors
/// Returns a range error if the assigned values are out of bounds (e.g. a
/// zero denominator).
pub fn div_floor<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    numerator: &LinearCombination<Fr>,
    denominator: &LinearCombination<Fr>,
    num_bits: usize,
) -> Result<Variable, SynthesisError> {
    let quot_rem = match (cs.lc_value(numerator), cs.lc_value(denominator)) {
        (Some(n), Some(d)) => {
            let n_val = unsigned_value(n, 2 * num_bits)?;
            let d_val = unsigned_value(d, num_bits)?;
            if d_val == 0 {
                return Err(SynthesisError::ValueOutOfRange(
                    "div_floor: zero denominator",
                ));
            }
            Some((n_val / d_val, n_val % d_val))
        }
        _ => None,
    };
    let q = cs.alloc_witness_opt(quot_rem.map(|(q, _)| Fr::from_u64(q)));
    let r = cs.alloc_witness_opt(quot_rem.map(|(_, r)| Fr::from_u64(r)));

    // q * denominator = numerator - r
    cs.enforce_named(
        q.into(),
        denominator.clone(),
        numerator.clone() - LinearCombination::from(r),
        "div_floor identity",
    );
    // 0 <= r  and r <= denominator - 1
    bit_decompose(cs, &r.into(), num_bits)?;
    let ge = greater_equal(
        cs,
        &(denominator.clone() - LinearCombination::constant(Fr::one())),
        &r.into(),
        num_bits,
    )?;
    cs.enforce_named(
        ge.into(),
        LinearCombination::constant(Fr::one()),
        LinearCombination::constant(Fr::one()),
        "div_floor remainder bound",
    );
    // 0 <= q < 2^num_bits
    bit_decompose(cs, &q.into(), num_bits)?;
    Ok(q)
}

/// Interprets a field element as a signed integer with the given bit bound.
pub(crate) fn signed_value(v: Fr, num_bits: usize) -> Result<i64, SynthesisError> {
    let bound = 1i64 << (num_bits - 1).min(62);
    let canon = v.to_canonical();
    if canon[1] == 0
        && canon[2] == 0
        && canon[3] == 0
        && (canon[0] as i64) < bound
        && canon[0] <= i64::MAX as u64
    {
        return Ok(canon[0] as i64);
    }
    let neg = (-v).to_canonical();
    if neg[1] == 0
        && neg[2] == 0
        && neg[3] == 0
        && (neg[0] as i64) <= bound
        && neg[0] <= i64::MAX as u64
    {
        return Ok(-(neg[0] as i64));
    }
    Err(SynthesisError::ValueOutOfRange("signed fixed-point value"))
}

/// Interprets a field element as an unsigned integer with the given bit bound.
pub(crate) fn unsigned_value(v: Fr, num_bits: usize) -> Result<u64, SynthesisError> {
    let canon = v.to_canonical();
    if canon[1] == 0
        && canon[2] == 0
        && canon[3] == 0
        && zkvc_ff::arith::num_bits_4(&canon) as usize <= num_bits
    {
        Ok(canon[0])
    } else {
        Err(SynthesisError::ValueOutOfRange(
            "unsigned fixed-point value",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_r1cs::ConstraintSystem;

    #[test]
    fn div_by_pow2_signed() {
        for (v, shift, expect) in [
            (100i64, 3u32, 12i64),
            (-100, 3, -13),
            (64, 6, 1),
            (-1, 4, -1),
            (0, 5, 0),
        ] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_i64(v));
            let q = div_by_const_pow2(&mut cs, &x.into(), shift, 32).unwrap();
            assert!(cs.is_satisfied(), "v={v}");
            assert_eq!(cs.value(q), Fr::from_i64(expect), "v={v} shift={shift}");
        }
    }

    #[test]
    fn div_floor_general() {
        for (n, d, expect) in [(100u64, 7u64, 14u64), (5, 5, 1), (3, 7, 0), (255, 16, 15)] {
            let mut cs = ConstraintSystem::<Fr>::new();
            let nv = cs.alloc_witness(Fr::from_u64(n));
            let dv = cs.alloc_witness(Fr::from_u64(d));
            let q = div_floor(&mut cs, &nv.into(), &dv.into(), 16).unwrap();
            assert!(cs.is_satisfied(), "{n}/{d}");
            assert_eq!(cs.value(q), Fr::from_u64(expect), "{n}/{d}");
        }
    }

    #[test]
    fn div_floor_zero_denominator_rejected() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let nv = cs.alloc_witness(Fr::from_u64(5));
        let dv = cs.alloc_witness(Fr::zero());
        assert!(div_floor(&mut cs, &nv.into(), &dv.into(), 16).is_err());
    }

    #[test]
    fn division_soundness_wrong_quotient_rejected() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let x = cs.alloc_witness(Fr::from_i64(100));
        let q = div_by_const_pow2(&mut cs, &x.into(), 3, 16).unwrap();
        assert!(cs.is_satisfied());
        let Variable::Witness(q_idx) = q else {
            unreachable!()
        };
        let mut w = cs.witness_assignment().to_vec();
        w[q_idx] = Fr::from_i64(13); // wrong quotient
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn signed_value_parsing() {
        assert_eq!(signed_value(Fr::from_i64(-42), 16).unwrap(), -42);
        assert_eq!(signed_value(Fr::from_u64(42), 16).unwrap(), 42);
        assert!(signed_value(Fr::from_u64(1 << 40), 16).is_err());
    }
}
