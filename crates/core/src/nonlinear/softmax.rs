//! The verified SoftMax approximation (paper §III-C).

use zkvc_ff::{Field, Fr, PrimeField};
use zkvc_r1cs::gadgets::{greater_equal, max_of, select};
use zkvc_r1cs::{ConstraintSink, LinearCombination, SinkExt, SynthesisError, Variable};

use crate::fixed::FixedPointConfig;

use super::division::{div_by_const_pow2, div_floor, signed_value};

/// Parameters of the SoftMax approximation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SoftmaxConfig {
    /// Fixed-point representation of the values.
    pub fixed: FixedPointConfig,
    /// `t` in the Taylor form `(1 + x/2^t)^{2^t}`.
    pub taylor_log2: u32,
    /// Inputs below this (fixed-point) threshold are clipped to zero.
    pub clip_threshold: i64,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        let fixed = FixedPointConfig::default();
        SoftmaxConfig {
            fixed,
            taylor_log2: 5,
            clip_threshold: -8 * fixed.scale(),
        }
    }
}

/// Synthesises the clipped Taylor exponential `e^x` for a non-positive
/// fixed-point input `x`, returning the output variable (scale `2^f`).
///
/// The branch selection (`x < T` → 0) is itself verified with a
/// bit-decomposition comparison, as described in the paper ("two-bit
/// decomposition" sets: one for the comparison, one for each rescale).
///
/// # Errors
/// Propagates range errors if the assigned value falls outside the
/// configured bit-width.
pub fn synthesize_exp_neg<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    x: &LinearCombination<Fr>,
    cfg: &SoftmaxConfig,
) -> Result<Variable, SynthesisError> {
    let bits = cfg.fixed.total_bits as usize;
    let scale = Fr::from_u64(cfg.fixed.scale() as u64);

    // above_threshold = (x >= T)
    let threshold = LinearCombination::constant(Fr::from_i64(cfg.clip_threshold));
    let above = greater_equal(cs, x, &threshold, bits)?;

    // base = 1 + x / 2^t, clamped at zero from below by the clipping branch.
    let x_shifted = div_by_const_pow2(cs, x, cfg.taylor_log2, bits)?;
    let base = LinearCombination::constant(scale) + LinearCombination::from(x_shifted);

    // When the base itself would go negative (possible only below the
    // clipping threshold for sensible parameter choices), the select below
    // discards the powered value anyway; to keep the squaring chain's range
    // checks satisfiable we work with max(base, 0).
    let clamped_val = match cs.lc_value(&base) {
        Some(v) => Some(Fr::from_i64(signed_value(v, bits)?.max(0))),
        None => None,
    };
    let clamped = cs.alloc_witness_opt(clamped_val);
    // (base - clamped) * above = 0 : when the input is above the clipping
    // threshold the clamped copy must equal the real base.
    cs.enforce_named(
        base - LinearCombination::from(clamped),
        above.into(),
        LinearCombination::zero(),
        "exp base clamp",
    );

    // Repeated squaring with rescale: p <- (p*p) / 2^f, t times.
    let mut p: LinearCombination<Fr> = clamped.into();
    for _ in 0..cfg.taylor_log2 {
        let sq_val = cs.lc_product(&p, &p);
        let sq = cs.alloc_witness_opt(sq_val);
        cs.enforce_named(p.clone(), p.clone(), sq.into(), "exp squaring");
        let rescaled = div_by_const_pow2(cs, &sq.into(), cfg.fixed.fraction_bits, 2 * bits)?;
        p = rescaled.into();
    }

    // Output: select(above, p, 0)
    let out = select(cs, above, &p, &LinearCombination::zero());
    Ok(out)
}

/// Synthesises the full verified SoftMax over a vector of fixed-point
/// logits, returning one output variable per element (scale `2^f`).
///
/// Steps (all verified in-circuit):
/// 1. `x_max` via comparison + membership constraints,
/// 2. normalised inputs `x_i - x_max` (free, linear),
/// 3. clipped Taylor exponentials,
/// 4. verified division by the sum of exponentials.
///
/// # Errors
/// Propagates range errors from the comparison and division gadgets.
///
/// # Panics
/// Panics if `inputs` is empty.
pub fn synthesize_softmax<S: ConstraintSink<Fr> + ?Sized>(
    cs: &mut S,
    inputs: &[LinearCombination<Fr>],
    cfg: &SoftmaxConfig,
) -> Result<Vec<Variable>, SynthesisError> {
    assert!(!inputs.is_empty(), "softmax over an empty vector");
    let bits = cfg.fixed.total_bits as usize;

    // 1. verified maximum
    let x_max = max_of(cs, inputs, bits)?;

    // 2/3. exponentials of the normalised inputs
    let mut exps = Vec::with_capacity(inputs.len());
    for x in inputs {
        let normalised = x.clone() - LinearCombination::from(x_max);
        let e = synthesize_exp_neg(cs, &normalised, cfg)?;
        exps.push(e);
    }

    // 4. normalise: out_i = floor(e_i * 2^f / sum_j e_j)
    let mut sum_lc = LinearCombination::zero();
    for e in &exps {
        sum_lc.push(*e, Fr::one());
    }
    let scale = Fr::from_u64(cfg.fixed.scale() as u64);
    let mut outputs = Vec::with_capacity(exps.len());
    for e in &exps {
        let numerator = LinearCombination::from(*e) * scale;
        let out = div_floor(cs, &numerator, &sum_lc, bits)?;
        outputs.push(out);
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_r1cs::ConstraintSystem;

    fn cfg() -> SoftmaxConfig {
        SoftmaxConfig::default()
    }

    #[test]
    fn exp_matches_reference() {
        let c = cfg();
        for x_real in [0.0f64, -0.25, -0.5, -1.0, -2.0, -4.0, -7.5, -9.0, -20.0] {
            let xq = c.fixed.quantize(x_real);
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_i64(xq));
            let e = synthesize_exp_neg(&mut cs, &x.into(), &c).unwrap();
            assert!(cs.is_satisfied(), "x={x_real}");
            let expect = c.fixed.exp_reference(xq, c.taylor_log2, c.clip_threshold);
            assert_eq!(cs.value(e), Fr::from_i64(expect), "x={x_real}");
        }
    }

    #[test]
    fn exp_approximation_is_close_to_true_exp() {
        let c = cfg();
        for x_real in [-0.1f64, -0.5, -1.0, -2.0, -3.0] {
            let xq = c.fixed.quantize(x_real);
            let mut cs = ConstraintSystem::<Fr>::new();
            let x = cs.alloc_witness(Fr::from_i64(xq));
            let e = synthesize_exp_neg(&mut cs, &x.into(), &c).unwrap();
            let got = c.fixed.dequantize(signed_value(cs.value(e), 32).unwrap());
            let expect = x_real.exp();
            assert!(
                (got - expect).abs() < 0.08,
                "x={x_real}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn softmax_matches_reference_and_satisfies() {
        let c = cfg();
        let logits = [-1.0f64, 0.5, 2.0, 0.0];
        let quantised: Vec<i64> = logits.iter().map(|v| c.fixed.quantize(*v)).collect();
        let mut cs = ConstraintSystem::<Fr>::new();
        let input_lcs: Vec<LinearCombination<Fr>> = quantised
            .iter()
            .map(|q| cs.alloc_witness(Fr::from_i64(*q)).into())
            .collect();
        let outs = synthesize_softmax(&mut cs, &input_lcs, &c).unwrap();
        assert!(cs.is_satisfied());
        let reference = c
            .fixed
            .softmax_reference(&quantised, c.taylor_log2, c.clip_threshold);
        for (o, r) in outs.iter().zip(reference.iter()) {
            assert_eq!(cs.value(*o), Fr::from_i64(*r));
        }
        // Compare against true softmax.
        let exp: Vec<f64> = logits.iter().map(|v| v.exp()).collect();
        let total: f64 = exp.iter().sum();
        for (o, e) in outs.iter().zip(exp.iter()) {
            let got = c.fixed.dequantize(signed_value(cs.value(*o), 32).unwrap());
            assert!(
                (got - e / total).abs() < 0.05,
                "got {got}, want {}",
                e / total
            );
        }
    }

    #[test]
    fn softmax_soundness_tampered_output_rejected() {
        let c = cfg();
        let quantised: Vec<i64> = [0.3f64, -0.7, 1.1]
            .iter()
            .map(|v| c.fixed.quantize(*v))
            .collect();
        let mut cs = ConstraintSystem::<Fr>::new();
        let input_lcs: Vec<LinearCombination<Fr>> = quantised
            .iter()
            .map(|q| cs.alloc_witness(Fr::from_i64(*q)).into())
            .collect();
        let outs = synthesize_softmax(&mut cs, &input_lcs, &c).unwrap();
        assert!(cs.is_satisfied());
        let Variable::Witness(idx) = outs[0] else {
            unreachable!()
        };
        let mut w = cs.witness_assignment().to_vec();
        w[idx] += Fr::from_u64(2);
        cs.set_witness_assignment(w);
        assert!(!cs.is_satisfied());
    }

    #[test]
    fn constraint_cost_is_linear_in_input_length() {
        let c = cfg();
        let count = |n: usize| -> usize {
            let mut cs = ConstraintSystem::<Fr>::new();
            let lcs: Vec<LinearCombination<Fr>> = (0..n)
                .map(|i| cs.alloc_witness(Fr::from_i64(i as i64 * 10)).into())
                .collect();
            synthesize_softmax(&mut cs, &lcs, &c).unwrap();
            cs.num_constraints()
        };
        let c4 = count(4);
        let c8 = count(8);
        let c16 = count(16);
        // roughly linear growth
        assert!(c8 < 2 * c4 + 64);
        assert!(c16 < 2 * c8 + 64);
    }
}
