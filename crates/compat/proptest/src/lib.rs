//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x API used by the zkVC test
//! suites: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, `a in strategy` argument binding,
//! [`prop_assert!`]/[`prop_assert_eq!`], integer-range strategies,
//! [`collection::vec`], [`any`] and [`Strategy::prop_map`].
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's module path and name), so failures are reproducible run-to-run.
//! There is no shrinking: a failing case reports its arguments via `Debug`
//! and panics.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

// Re-exported so the `proptest!` macro can name the rng via `$crate::rand`
// regardless of the caller's own dependencies.
pub use rand;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type produced by failing `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> core::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The mapping closure is opaque; no bound on S keeps closures
        // composable.
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T> core::fmt::Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AnyStrategy").finish_non_exhaustive()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with elements from `elem` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    impl<S> core::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            // No bound on S: element strategies may wrap closures.
            f.debug_struct("VecStrategy")
                .field("size", &self.size)
                .finish_non_exhaustive()
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Derives a deterministic seed for one test case from the test name.
pub fn case_seed(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a proptest-based test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Alias module matching proptest's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Defines property tests: each `fn` runs `cases` times with arguments
/// freshly drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            $crate::case_seed(test_name, case as u64),
                        );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    let __dbg = format!(concat!($("\n  ", stringify!($arg), " = {:?}"),+), $(&$arg),+);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}{}",
                            case + 1, config.cases, test_name, e, __dbg
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_and_vecs(a in 1usize..4, v in prop::collection::vec(0u64..10, 1..5)) {
            prop_assert!((1..4).contains(&a));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn mapped_any(bytes in any::<[u8; 4]>().prop_map(u32::from_le_bytes)) {
            prop_assert_eq!(bytes, bytes);
        }

        #[test]
        fn early_ok_return(n in 0u64..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(case_seed("x", 3), case_seed("x", 3));
        assert_ne!(case_seed("x", 3), case_seed("y", 3));
    }

    use crate::case_seed;
}
