//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API used by the `zkvc-bench`
//! benchmark targets: `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`), `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistical analysis: each
//! benchmark closure is warmed up once and then timed over `sample_size`
//! iterations, with the mean printed to stdout. Good enough to keep
//! `cargo bench` runnable (and the paper harnesses comparable) without
//! network access to crates.io.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has no separate warm-up
    /// phase beyond one untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub times exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark with no externally supplied input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; results are printed as they complete).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!("  {:<40} {:>12.6} s/iter", id.label, mean.as_secs_f64());
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `sample_size` timed
    /// iterations accumulated into the mean reported for the benchmark.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }
}

/// An identifier combining a function name and a parameter display string.
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// An identity function that hides a value from the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3).warm_up_time(Duration::ZERO);
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        // one warm-up + three timed samples
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("with", 7), &7usize, |b, v| {
            b.iter(|| assert_eq!(*v, 7));
        });
        group.finish();
    }
}
