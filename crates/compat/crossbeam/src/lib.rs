//! Offline stand-in for the `crossbeam` crate.
//!
//! Two pieces of crossbeam are used in this workspace: [`thread::scope`]
//! (by the parallel MSM driver in `zkvc-curve`) and [`deque`] (by the
//! work-stealing proving-pool scheduler in `zkvc-runtime`). Since Rust
//! 1.63 the standard library provides scoped threads natively, so the
//! `thread` shim keeps crossbeam's call-site shape —
//! `scope(|s| { s.spawn(|_| ...); }).expect(...)` — while delegating all
//! the actual work to [`std::thread::scope`]. The `deque` shim keeps
//! crossbeam-deque's `Worker`/`Stealer`/`Steal` API *names* over a
//! `Mutex<VecDeque>`: correct and contention-adequate for queues of
//! millisecond-scale proving jobs. Note one deliberate semantic
//! divergence: this `Worker` is `Sync` and accepts pushes from any
//! thread, which the real single-owner `Worker` forbids — a port to the
//! real crate must route cross-thread submissions through an `Injector`
//! (see the `deque` module docs).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

/// Work-stealing double-ended queues, crossbeam-deque-style.
///
/// One divergence from the real crate, chosen deliberately: this
/// [`Worker`](deque::Worker) is `Sync` and may be pushed to from any
/// thread, so a scheduler can distribute submissions across per-worker
/// shards directly instead of routing everything through an `Injector`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of one steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The operation lost a race and may be retried (never produced by
        /// this mutex-based shim; kept for API parity with crossbeam).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen item, if the steal succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(item) => Some(item),
                Steal::Empty | Steal::Retry => None,
            }
        }
    }

    /// A FIFO queue owned by one scheduler shard: the owner pushes to the
    /// back and pops from the front; thieves steal from the front too, so
    /// both ends preserve submission order.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// An empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues an item at the back.
        pub fn push(&self, item: T) {
            self.queue.lock().expect("deque poisoned").push_back(item);
        }

        /// Dequeues the oldest item, if any.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// A handle other workers use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }

        /// `true` when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_fifo()
        }
    }

    /// A stealing handle onto some [`Worker`]'s queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest queued item (FIFO steal, matching
        /// [`Worker::new_fifo`] semantics).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }
}

/// Scoped threads, crossbeam-style.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure; spawned closures
    /// receive a reference to it (crossbeam convention), enabling nested
    /// spawns.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `|_| ...` call sites.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the enclosing
    /// stack frame can be spawned; all are joined before `scope` returns.
    ///
    /// With `std::thread::scope` underneath, a panicking child thread is
    /// re-raised at the end of the scope rather than reported through the
    /// `Err` variant, so the result is always `Ok` — callers that `.expect`
    /// it (the crossbeam idiom) behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Steal, Worker};
    use super::thread;

    #[test]
    fn deque_fifo_push_pop_steal() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        assert!(w.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.len(), 4);
        // Owner pops oldest-first; thieves steal oldest-first too.
        assert_eq!(w.pop(), Some(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn deque_steals_race_safely_across_threads() {
        let w = Worker::new_fifo();
        for i in 0..1000u64 {
            w.push(i);
        }
        let mut sums = Vec::new();
        thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let s = w.stealer();
                handles.push(scope.spawn(move |_| {
                    let mut sum = 0u64;
                    while let Steal::Success(v) = s.steal() {
                        sum += v;
                    }
                    sum
                }));
            }
            for h in handles {
                sums.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(sums.iter().sum::<u64>(), 999 * 1000 / 2);
        assert!(w.is_empty());
    }

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        thread::scope(|s| {
            for (o, d) in out.chunks_mut(2).zip(data.chunks(2)) {
                s.spawn(move |_| {
                    for (x, y) in o.iter_mut().zip(d.iter()) {
                        *x = y * 10;
                    }
                });
            }
        })
        .expect("scope failed");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
