//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is used in this workspace (by the parallel MSM
//! driver in `zkvc-curve`). Since Rust 1.63 the standard library provides
//! scoped threads natively, so this shim keeps crossbeam's call-site shape —
//! `scope(|s| { s.spawn(|_| ...); }).expect(...)` — while delegating all the
//! actual work to [`std::thread::scope`].

#![warn(missing_docs)]

/// Scoped threads, crossbeam-style.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure; spawned closures
    /// receive a reference to it (crossbeam convention), enabling nested
    /// spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `|_| ...` call sites.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the enclosing
    /// stack frame can be spawned; all are joined before `scope` returns.
    ///
    /// With `std::thread::scope` underneath, a panicking child thread is
    /// re-raised at the end of the scope rather than reported through the
    /// `Err` variant, so the result is always `Ok` — callers that `.expect`
    /// it (the crossbeam idiom) behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        thread::scope(|s| {
            for (o, d) in out.chunks_mut(2).zip(data.chunks(2)) {
                s.spawn(move |_| {
                    for (x, y) in o.iter_mut().zip(d.iter()) {
                        *x = y * 10;
                    }
                });
            }
        })
        .expect("scope failed");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
