//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! package provides the (small) subset of the `rand 0.8` API the zkVC stack
//! actually uses: the [`RngCore`]/[`Rng`] traits, [`SeedableRng`] with
//! `seed_from_u64`, uniform `gen`/`gen_range` sampling for the primitive
//! integer types, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded through SplitMix64.
//!
//! It is API-compatible with the call sites in this repository (`R: Rng +
//! ?Sized` generics included) but makes no attempt to match the upstream
//! crate's output streams: everything here is used for test vectors,
//! benchmark inputs and protocol randomness where only determinism and
//! statistical quality matter, not cross-crate reproducibility.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Full-domain sampling for primitive types (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that supports uniform sampling of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64. Not the upstream `rand::rngs::StdRng`
    /// stream, but the same API and statistical quality class.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro requires a non-zero state; SplitMix64 output of any
            // seed is never all-zero across four words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0xDEAD_BEEF_CAFE_F00D;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: u64 = rng.gen_range(0..256);
            assert!(u < 256);
            let w: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(7);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
