//! # zkvc-hash
//!
//! A from-scratch SHA-256 implementation and a Fiat-Shamir transcript built
//! on top of it. The transcript turns the interactive sum-check and Spartan
//! protocols into non-interactive ones and derives the CRPC folding
//! challenge `Z` from committed statements.
//!
//! ## Example
//!
//! ```rust
//! use zkvc_hash::{sha256, Transcript};
//! use zkvc_ff::Fr;
//!
//! // SHA-256 of the empty string (well-known vector).
//! let d = sha256(b"");
//! assert_eq!(d[0], 0xe3);
//!
//! let mut t = Transcript::new(b"example");
//! t.append_bytes(b"data", b"hello");
//! let c: Fr = t.challenge_field(b"c");
//! assert_ne!(c, zkvc_ff::Field::zero());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod sha256;
mod transcript;

pub use sha256::{sha256, Sha256};
pub use transcript::Transcript;
