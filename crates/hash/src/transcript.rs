//! Fiat-Shamir transcript.
//!
//! A simple hash-chain transcript: every absorbed message updates a running
//! SHA-256 state commitment, and challenges are derived by hashing the
//! current state with a domain-separation label and a counter. This is the
//! non-interactivity layer for the Spartan-style SNARK, the interactive
//! matmul baseline (made non-interactive), and CRPC's `Z` derivation.

use zkvc_curve::G1Affine;
use zkvc_ff::{Fr, PrimeField};

use crate::sha256::Sha256;

/// A Fiat-Shamir transcript with domain separation.
#[derive(Clone, Debug)]
pub struct Transcript {
    state: [u8; 32],
    counter: u64,
}

impl Transcript {
    /// Creates a transcript bound to a protocol label.
    pub fn new(label: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"zkvc-transcript-v1");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        Transcript {
            state: h.finalize(),
            counter: 0,
        }
    }

    fn absorb(&mut self, label: &[u8], data: &[u8]) {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&(data.len() as u64).to_le_bytes());
        h.update(data);
        self.state = h.finalize();
    }

    /// Appends raw bytes under a label.
    pub fn append_bytes(&mut self, label: &[u8], data: &[u8]) {
        self.absorb(label, data);
    }

    /// Appends a `u64`.
    pub fn append_u64(&mut self, label: &[u8], v: u64) {
        self.absorb(label, &v.to_le_bytes());
    }

    /// Appends a scalar-field element.
    pub fn append_field(&mut self, label: &[u8], v: &Fr) {
        self.absorb(label, &v.to_bytes_le());
    }

    /// Appends a slice of scalar-field elements.
    pub fn append_fields(&mut self, label: &[u8], vs: &[Fr]) {
        let mut bytes = Vec::with_capacity(vs.len() * 32);
        for v in vs {
            bytes.extend_from_slice(&v.to_bytes_le());
        }
        self.absorb(label, &bytes);
    }

    /// Appends a curve point.
    pub fn append_point(&mut self, label: &[u8], p: &G1Affine) {
        self.absorb(label, &p.to_bytes());
    }

    /// Derives a challenge as 32 pseudo-random bytes.
    pub fn challenge_bytes(&mut self, label: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(b"challenge");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label);
        h.update(&self.counter.to_le_bytes());
        self.counter += 1;
        let out = h.finalize();
        // ratchet the state so challenges also bind future messages
        self.state = out;
        out
    }

    /// Derives a scalar-field challenge.
    pub fn challenge_field(&mut self, label: &[u8]) -> Fr {
        let bytes = self.challenge_bytes(label);
        Fr::from_bytes_le_mod_order(&bytes)
    }

    /// Derives `n` scalar-field challenges.
    pub fn challenge_fields(&mut self, label: &[u8], n: usize) -> Vec<Fr> {
        (0..n).map(|_| self.challenge_field(label)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvc_ff::Field;

    #[test]
    fn deterministic_and_label_separated() {
        let mut a = Transcript::new(b"test");
        let mut b = Transcript::new(b"test");
        a.append_u64(b"x", 7);
        b.append_u64(b"x", 7);
        assert_eq!(a.challenge_field(b"c"), b.challenge_field(b"c"));

        let mut c = Transcript::new(b"test");
        c.append_u64(b"y", 7); // different label
        assert_ne!(a.challenge_field(b"c"), c.challenge_field(b"c"));
    }

    #[test]
    fn sequential_challenges_differ() {
        let mut t = Transcript::new(b"seq");
        let c1 = t.challenge_field(b"c");
        let c2 = t.challenge_field(b"c");
        assert_ne!(c1, c2);
        let cs = t.challenge_fields(b"batch", 5);
        assert_eq!(cs.len(), 5);
        assert!(cs.iter().all(|c| !c.is_zero()));
    }

    #[test]
    fn message_order_matters() {
        let mut a = Transcript::new(b"t");
        a.append_u64(b"x", 1);
        a.append_u64(b"y", 2);
        let mut b = Transcript::new(b"t");
        b.append_u64(b"y", 2);
        b.append_u64(b"x", 1);
        assert_ne!(a.challenge_bytes(b"c"), b.challenge_bytes(b"c"));
    }

    #[test]
    fn field_and_point_absorption() {
        use zkvc_curve::G1Projective;
        let mut t = Transcript::new(b"pts");
        t.append_field(b"f", &Fr::from_u64(99));
        t.append_fields(b"fs", &[Fr::from_u64(1), Fr::from_u64(2)]);
        t.append_point(b"g", &G1Projective::generator().to_affine());
        let c = t.challenge_field(b"out");
        assert!(!c.is_zero());
    }
}
