//! # zkVC
//!
//! A from-scratch Rust reproduction of **"zkVC: Fast Zero-Knowledge Proof
//! for Private and Verifiable Computing"** (DAC 2025): efficient zk-SNARK
//! circuits for matrix multiplication (CRPC + PSQ), verified non-linear
//! approximations, and end-to-end verifiable Transformer inference over two
//! proof-system backends built in this workspace (Groth16 and a
//! Spartan-style transparent SNARK).
//!
//! This crate is the umbrella: it re-exports every sub-crate so downstream
//! users can depend on `zkvc` alone.
//!
//! ```rust
//! use zkvc::core::api::ProofSystem;
//! use zkvc::core::matmul::{MatMulBuilder, Strategy};
//! use zkvc::core::Backend;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let x = vec![vec![1i64, 2], vec![3, 4]];
//! let w = vec![vec![5i64, 6], vec![7, 8]];
//! // Public outputs: the proof binds Y, not just the circuit shape.
//! let job = MatMulBuilder::new(2, 2, 2)
//!     .strategy(Strategy::CrpcPsq)
//!     .public_outputs(true)
//!     .build_integers(&x, &w);
//! let system = Backend::Spartan.system();
//! let (pk, vk) = system.setup(&job, &mut rng);
//! let proof = system.prove(&pk, &job, &mut rng);
//! assert!(system.verify(&vk, &proof));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

/// Finite fields, polynomials, FFT domains and multilinear extensions.
pub use zkvc_ff as ff;

/// The pairing-friendly curve, MSM and the Tate pairing.
pub use zkvc_curve as curve;

/// SHA-256 and Fiat-Shamir transcripts.
pub use zkvc_hash as hash;

/// The R1CS constraint system and gadget library.
pub use zkvc_r1cs as r1cs;

/// The R1CS-to-QAP reduction.
pub use zkvc_qap as qap;

/// The Groth16 zk-SNARK (the `zkVC-G` backend).
pub use zkvc_groth16 as groth16;

/// The Spartan-style transparent SNARK (the `zkVC-S` backend).
pub use zkvc_spartan as spartan;

/// The interactive sum-check matmul baseline (zkCNN-style).
pub use zkvc_interactive as interactive;

/// The paper's contribution: CRPC, PSQ, non-linear gadgets and the
/// high-level prove/verify API.
pub use zkvc_core as core;

/// The quantised Transformer substrate and model-to-circuit compiler.
pub use zkvc_nn as nn;

/// The batch-proving service: key caching, the concurrent proving pool,
/// proof envelopes, and the `zkvc` CLI's job grammar.
pub use zkvc_runtime as runtime;
