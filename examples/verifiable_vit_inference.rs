//! End-to-end verifiable Vision-Transformer inference: compile a (small)
//! ViT with the zkVC hybrid token-mixer schedule into a circuit, prove the
//! forward pass with both backends and verify the proofs.
//!
//! Run with: `cargo run --release --example verifiable_vit_inference`
//! The model here is a reduced ViT so the example finishes in seconds; the
//! `table3` harness in `zkvc-bench` runs the paper's configurations.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::Strategy;
use zkvc::core::Backend;
use zkvc::nn::circuit::ModelCircuit;
use zkvc::nn::mixer::MixerSchedule;
use zkvc::nn::models::VitConfig;

fn main() {
    // A ViT with 3 layers, 2 heads, hidden dim 16, 8 tokens, 10 classes.
    let model = VitConfig::custom(3, 2, 16, 8, 10).to_model();
    let schedule = MixerSchedule::zkvc_hybrid(3);
    println!(
        "Compiling {} with the '{}' mixer schedule...",
        model.name, schedule.name
    );

    let circuit = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 2024);
    assert!(
        circuit.cs.is_satisfied(),
        "the forward pass must satisfy its own circuit"
    );

    println!("Per-layer constraint breakdown:");
    for layer in &circuit.layers {
        println!(
            "  {:<28} {:>8} constraints  {:>8} variables",
            layer.label, layer.constraints, layer.variables
        );
    }
    println!(
        "  {:<28} {:>8} constraints  {:>8} variables",
        "TOTAL",
        circuit.num_constraints(),
        circuit.num_variables()
    );
    println!(
        "Class logits (fixed-point field elements): {:?}",
        circuit.logits
    );

    let mut rng = StdRng::seed_from_u64(9);
    for backend in Backend::ALL {
        let artifacts = backend.prove_cs(&circuit.cs, &mut rng);
        let (ok, verify_time) = backend.verify_cs_timed(&circuit.cs, &artifacts);
        println!(
            "{:<8}  setup: {:>8.3?}  prove: {:>8.3?}  verify: {:>8.3?}  proof: {:>7} bytes  ok: {}",
            backend.name(),
            artifacts.metrics.setup_time,
            artifacts.metrics.prove_time,
            verify_time,
            artifacts.metrics.proof_size_bytes,
            ok
        );
        assert!(ok);
    }
}
