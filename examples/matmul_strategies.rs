//! Compare the four matrix-multiplication circuit strategies of the paper
//! (vanilla, vanilla+PSQ, CRPC, CRPC+PSQ) on the same statement: constraint
//! counts, wire counts and proving time.
//!
//! Run with: `cargo run --release --example matmul_strategies`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::{MatMulBuilder, Strategy};
use zkvc::core::Backend;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (a, n, b) = (16usize, 24usize, 32usize);
    println!("Matrix multiplication [{a}x{n}] x [{n}x{b}], Groth16 backend\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "constraints", "variables", "left wires", "setup(s)", "prove(s)"
    );

    let mut baseline = None;
    for strategy in Strategy::ALL {
        let job = MatMulBuilder::new(a, n, b)
            .strategy(strategy)
            .build_random(&mut rng);
        assert!(job.cs.is_satisfied());
        let t = Instant::now();
        let artifacts = Backend::Groth16.prove(&job, &mut rng);
        let total = t.elapsed();
        assert!(Backend::Groth16.verify(&job, &artifacts));
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12.3} {:>12.3}",
            strategy.name(),
            job.stats.num_constraints,
            job.stats.num_variables,
            job.stats.num_left_wires,
            artifacts.metrics.setup_time.as_secs_f64(),
            artifacts.metrics.prove_time.as_secs_f64(),
        );
        if strategy == Strategy::Vanilla {
            baseline = Some(total);
        } else if strategy == Strategy::CrpcPsq {
            if let Some(base) = baseline {
                println!(
                    "\nzkVC (CRPC+PSQ) end-to-end speed-up over vanilla: {:.1}x",
                    base.as_secs_f64() / total.as_secs_f64()
                );
            }
        }
    }
}
