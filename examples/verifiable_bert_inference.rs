//! Verifiable BERT-style inference: compare token-mixer schedules on a
//! reduced BERT and prove the cheapest and the hybrid one.
//!
//! Run with: `cargo run --release --example verifiable_bert_inference`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::Strategy;
use zkvc::core::Backend;
use zkvc::nn::circuit::ModelCircuit;
use zkvc::nn::mixer::MixerSchedule;
use zkvc::nn::models::{BertConfig, ModelConfig};

fn main() {
    // Reduce the paper's BERT (4 layers, 256 dim, 128 tokens) to 1/16 scale
    // so the example runs in seconds.
    let base = BertConfig::paper().to_model().scaled_down(16);
    let model = ModelConfig {
        name: "BERT (example scale)".to_string(),
        input_dim: base.input_dim,
        layers: base.layers,
        num_classes: 3,
    };
    let n = model.num_layers();

    println!(
        "Constraint cost of each token-mixer schedule on {}:",
        model.name
    );
    let schedules = [
        MixerSchedule::soft_approx(n),
        MixerSchedule::soft_free_s(n),
        MixerSchedule::soft_free_l(n),
        MixerSchedule::zkvc_hybrid_nlp(n),
    ];
    let mut circuits = Vec::new();
    for schedule in schedules {
        let circuit = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 31);
        assert!(circuit.cs.is_satisfied());
        println!(
            "  {:<12} {:>9} constraints",
            schedule.name,
            circuit.num_constraints()
        );
        circuits.push((schedule, circuit));
    }

    // Prove the zkVC hybrid with the transparent backend.
    let (schedule, circuit) = circuits.last().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let artifacts = Backend::Spartan.prove_cs(&circuit.cs, &mut rng);
    let ok = Backend::Spartan.verify_cs(&circuit.cs, &artifacts);
    println!(
        "\nProved the '{}' schedule with the Spartan backend in {:.3?} ({} byte proof). Verified: {ok}",
        schedule.name, artifacts.metrics.prove_time, artifacts.metrics.proof_size_bytes
    );
    assert!(ok);
}
