//! Verify a SoftMax computation in zero knowledge: the non-linear
//! approximation pipeline of §III-C in isolation (max check, clipped Taylor
//! exponential, verified division), proved with the Groth16 backend.
//!
//! Run with: `cargo run --release --example softmax_verification`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::fixed::FixedPointConfig;
use zkvc::core::nonlinear::{synthesize_softmax, SoftmaxConfig};
use zkvc::core::Backend;
use zkvc::ff::{Fr, PrimeField};
use zkvc::r1cs::{ConstraintSystem, LinearCombination};

fn main() {
    let cfg = SoftmaxConfig::default();
    let fixed = FixedPointConfig::default();
    let logits = [1.25f64, -0.5, 0.75, 2.0, -1.0, 0.0];
    let quantised: Vec<i64> = logits.iter().map(|v| fixed.quantize(*v)).collect();

    println!("Logits: {logits:?}");
    println!("Quantised (scale 2^{}): {quantised:?}", fixed.fraction_bits);

    let mut cs = ConstraintSystem::<Fr>::new();
    let inputs: Vec<LinearCombination<Fr>> = quantised
        .iter()
        .map(|q| cs.alloc_witness(Fr::from_i64(*q)).into())
        .collect();
    let outputs = synthesize_softmax(&mut cs, &inputs, &cfg).expect("inputs are in range");
    assert!(cs.is_satisfied());
    println!(
        "SoftMax circuit: {} constraints, {} variables",
        cs.num_constraints(),
        cs.num_variables()
    );

    // Compare the in-circuit approximation against the real softmax.
    let exp: Vec<f64> = logits.iter().map(|v| v.exp()).collect();
    let total: f64 = exp.iter().sum();
    println!("{:<8} {:>12} {:>12}", "index", "true", "in-circuit");
    for (i, out) in outputs.iter().enumerate() {
        let circuit_val = cs.value(*out).to_canonical()[0] as f64 / fixed.scale() as f64;
        println!("{:<8} {:>12.4} {:>12.4}", i, exp[i] / total, circuit_val);
    }

    let mut rng = StdRng::seed_from_u64(5);
    let artifacts = Backend::Groth16.prove_cs(&cs, &mut rng);
    let ok = Backend::Groth16.verify_cs(&cs, &artifacts);
    println!(
        "\nGroth16 proof of the SoftMax evaluation: {} bytes, proved in {:.3?}, verified: {ok}",
        artifacts.metrics.proof_size_bytes, artifacts.metrics.prove_time
    );
    assert!(ok);
}
