//! Quickstart: prove and verify a single matrix multiplication with zkVC.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::{MatMulBuilder, Strategy};
use zkvc::core::Backend;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // The server computed Y = X * W and wants to convince the client without
    // revealing W.
    let x = vec![vec![3i64, -1, 4], vec![1, 5, -9], vec![2, 6, 5]];
    let w = vec![vec![2i64, 7], vec![1, -8], vec![-2, 8]];

    println!("Building the CRPC+PSQ circuit for a 3x3 * 3x2 multiplication...");
    let job = MatMulBuilder::new(3, 3, 2)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x, &w);
    println!(
        "  constraints: {}   variables: {}   (a vanilla circuit would need {})",
        job.stats.num_constraints,
        job.stats.num_variables,
        3 * 3 * 2 + 3 * 2,
    );

    for backend in Backend::ALL {
        let artifacts = backend.prove(&job, &mut rng);
        let ok = backend.verify(&job, &artifacts);
        println!(
            "{:<8}  prove: {:>8.3?}  proof: {:>6} bytes  verified: {}",
            backend.name(),
            artifacts.metrics.prove_time,
            artifacts.metrics.proof_size_bytes,
            ok
        );
        assert!(ok, "verification must succeed for an honest prover");
    }

    println!("\nThe product the proof attests to:");
    for row in &job.y {
        println!("  {row:?}");
    }
}
