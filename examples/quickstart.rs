//! Quickstart: prove and verify a single matrix multiplication with zkVC
//! through the circuit-generic `Circuit`/`ProofSystem` trait API.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::api::{Circuit, ProofSystem};
use zkvc::core::matmul::{MatMulBuilder, Strategy};
use zkvc::core::Backend;
use zkvc::ff::Field;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // The server computed Y = X * W and wants to convince the client without
    // revealing W. With `public_outputs(true)` the proof *binds* Y: it is
    // part of the statement, not the witness.
    let x = vec![vec![3i64, -1, 4], vec![1, 5, -9], vec![2, 6, 5]];
    let w = vec![vec![2i64, 7], vec![1, -8], vec![-2, 8]];

    println!("Building the CRPC+PSQ circuit for a 3x3 * 3x2 multiplication...");
    let job = MatMulBuilder::new(3, 3, 2)
        .strategy(Strategy::CrpcPsq)
        .public_outputs(true)
        .build_integers(&x, &w);
    println!(
        "  constraints: {}   variables: {}   public outputs: {}   (a vanilla circuit would need {} constraints)",
        job.stats.num_constraints,
        job.stats.num_variables,
        job.public_outputs().len(),
        3 * 3 * 2 + 3 * 2,
    );

    for backend in Backend::ALL {
        // `job` is just a `Circuit`; either proof system proves it.
        let system: &dyn ProofSystem = backend.system();
        let (pk, vk) = system.setup(&job, &mut rng);
        let artifacts = system.prove(&pk, &job, &mut rng);
        let ok = system.verify(&vk, &artifacts);
        println!(
            "{:<8}  prove: {:>8.3?}  proof: {:>6} bytes  verified: {}",
            system.name(),
            artifacts.metrics.prove_time,
            artifacts.metrics.proof_size_bytes,
            ok
        );
        assert!(ok, "verification must succeed for an honest prover");

        // Statement binding: the same proof against a tampered Y fails.
        let mut tampered = artifacts.clone();
        tampered.public_inputs[0] += zkvc::ff::Fr::one();
        assert!(
            !system.verify(&vk, &tampered),
            "a tampered Y must be rejected"
        );
    }

    println!("\nThe product the proof binds (and attests to):");
    for row in &job.y {
        println!("  {row:?}");
    }
    println!("Tampering with any bound output makes verification fail.");
}
