//! Workspace-level integration test: the batch-proving service consumed
//! through the umbrella crate, the way a downstream user would.

use zkvc::core::matmul::Strategy;
use zkvc::core::Backend;
use zkvc::runtime::{circuit_shape_digest, prove_batch, JobSpec, KeyCache, ProofEnvelope};

#[test]
fn batch_service_end_to_end_through_umbrella() {
    // A mixed batch: both backends, a CRPC strategy and a vanilla one.
    let specs = vec![
        JobSpec::new(3, 4, 3),
        JobSpec::new(3, 4, 3),
        JobSpec::new(3, 4, 3).with_backend(Backend::Spartan),
        JobSpec::new(2, 2, 2)
            .with_strategy(Strategy::Vanilla)
            .with_backend(Backend::Spartan),
    ];
    let report = prove_batch(&specs, 2, 123);
    assert!(report.all_verified());
    assert_eq!(report.results.len(), 4);
    assert_eq!(
        report.cache.misses, 3,
        "three distinct (shape, backend) pairs"
    );
    assert_eq!(report.cache.hits, 1);

    // Each proof decodes from bytes and reports the right backend.
    for (result, spec) in report.results.iter().zip(&specs) {
        let envelope = ProofEnvelope::from_bytes(&result.proof_bytes).expect("decodes");
        assert_eq!(envelope.backend, spec.backend());
    }
}

#[test]
fn shape_digest_drives_key_reuse_across_callers() {
    // Two independently built same-shape circuits digest identically, and
    // the cache hands back the same key object for both.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zkvc::core::matmul::MatMulBuilder;

    let build = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        MatMulBuilder::new(2, 3, 2)
            .strategy(Strategy::Vanilla)
            .build_random(&mut rng)
            .cs
    };
    let cs1 = build(1);
    let cs2 = build(2);
    assert_eq!(circuit_shape_digest(&cs1), circuit_shape_digest(&cs2));

    let cache = KeyCache::new();
    let (k1, hit1) = cache.get_or_setup(Backend::Groth16, &cs1);
    let (k2, hit2) = cache.get_or_setup(Backend::Groth16, &cs2);
    assert!(!hit1 && hit2);
    assert_eq!(k1.digest, k2.digest);

    // And the shared key proves/verifies both assignments.
    let mut rng = StdRng::seed_from_u64(3);
    for cs in [&cs1, &cs2] {
        let artifacts = Backend::Groth16.prove_with_key(&k1.prover, cs, &mut rng);
        assert!(Backend::Groth16.verify_with_key(&k2.verifier, &artifacts));
    }
}
