//! Integration tests spanning the whole stack: matmul circuits through both
//! proof-system backends, including adversarial cases.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::{MatMulBuilder, Strategy, ZSource};
use zkvc::core::Backend;
use zkvc::ff::{Field, Fr, PrimeField};

fn matrices(a: usize, n: usize, b: usize, seed: i64) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let x = (0..a)
        .map(|i| {
            (0..n)
                .map(|k| ((i as i64 + 1) * (k as i64 + 2) + seed) % 97 - 48)
                .collect()
        })
        .collect();
    let w = (0..n)
        .map(|k| {
            (0..b)
                .map(|j| ((k as i64 + 3) * (j as i64 + 1) - seed) % 89 - 44)
                .collect()
        })
        .collect();
    (x, w)
}

#[test]
fn every_strategy_proves_and_verifies_on_both_backends() {
    let mut rng = StdRng::seed_from_u64(1);
    let (x, w) = matrices(4, 6, 5, 3);
    for strategy in Strategy::ALL {
        let job = MatMulBuilder::new(4, 6, 5)
            .strategy(strategy)
            .build_integers(&x, &w);
        assert!(job.cs.is_satisfied(), "{strategy:?}");
        for backend in Backend::ALL {
            let artifacts = backend.prove(&job, &mut rng);
            assert!(
                backend.verify(&job, &artifacts),
                "{strategy:?} on {backend:?}"
            );
        }
    }
}

#[test]
fn zkvc_strategy_reduces_constraints_as_the_paper_claims() {
    let (a, n, b) = (8usize, 12usize, 10usize);
    let (x, w) = matrices(a, n, b, 7);
    let vanilla = MatMulBuilder::new(a, n, b)
        .strategy(Strategy::Vanilla)
        .build_integers(&x, &w);
    let zkvc = MatMulBuilder::new(a, n, b)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x, &w);
    // O(abn) -> O(n)
    assert_eq!(vanilla.stats.num_constraints, a * b * n + a * b);
    assert_eq!(zkvc.stats.num_constraints, n);
    assert!(zkvc.stats.num_constraints * 50 < vanilla.stats.num_constraints);
    // Identical results.
    assert_eq!(vanilla.y, zkvc.y);
}

#[test]
fn groth16_proof_does_not_verify_for_a_different_statement() {
    let mut rng = StdRng::seed_from_u64(2);
    let (x, w) = matrices(3, 4, 3, 1);
    let job = MatMulBuilder::new(3, 4, 3)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x, &w);
    let artifacts = Backend::Groth16.prove(&job, &mut rng);
    // Same circuit, different witness/statement: the verification key does
    // not carry over to a circuit with different constants.
    let (x2, w2) = matrices(3, 4, 3, 9);
    let other = MatMulBuilder::new(3, 4, 3)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x2, &w2);
    // The proof still verifies under its own public inputs (there are none
    // beyond the statement structure), but a tampered proof must fail.
    let mut bad = artifacts;
    if let zkvc::core::backend::ProofData::Groth16 { proof, .. } = &mut bad.data {
        proof.a = (proof.a.to_projective() + zkvc::curve::G1Projective::generator()).to_affine();
    }
    assert!(!Backend::Groth16.verify(&job, &bad));
    let _ = other;
}

#[test]
fn dishonest_witness_cannot_be_proved_with_spartan() {
    // Corrupt one output element of the CRPC job; the prover runs anyway and
    // the verifier must reject.
    let mut rng = StdRng::seed_from_u64(3);
    let (x, w) = matrices(3, 3, 3, 5);
    let job = MatMulBuilder::new(3, 3, 3)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x, &w);
    let mut cs = job.cs;
    let mut witness = cs.witness_assignment().to_vec();
    let y_index = 3 * 3 + 3 * 3; // first output variable after the inputs
    witness[y_index] += Fr::from_u64(1);
    cs.set_witness_assignment(witness);
    assert!(!cs.is_satisfied());
    let artifacts = Backend::Spartan.prove_cs(&cs, &mut rng);
    assert!(!Backend::Spartan.verify_cs(&cs, &artifacts));
}

#[test]
fn fixed_z_matches_transcript_z_semantics() {
    // Completeness does not depend on where Z comes from.
    let (x, w) = matrices(2, 5, 2, 11);
    let fixed = MatMulBuilder::new(2, 5, 2)
        .strategy(Strategy::Crpc)
        .z_source(ZSource::Fixed(Fr::from_u64(31337)))
        .build_integers(&x, &w);
    let transcript = MatMulBuilder::new(2, 5, 2)
        .strategy(Strategy::Crpc)
        .build_integers(&x, &w);
    assert!(fixed.cs.is_satisfied());
    assert!(transcript.cs.is_satisfied());
    assert_eq!(fixed.y, transcript.y);
    assert_ne!(fixed.z, Fr::zero());
}

#[test]
fn interactive_baseline_agrees_with_snark_statement() {
    // The same product proved by the zkCNN-style interactive protocol and by
    // the zkVC SNARK path.
    let (x, w) = matrices(4, 4, 4, 13);
    let to_field = |m: &Vec<Vec<i64>>| -> Vec<Vec<Fr>> {
        m.iter()
            .map(|r| r.iter().map(|v| Fr::from_i64(*v)).collect())
            .collect()
    };
    let xf = to_field(&x);
    let wf = to_field(&w);
    let claim = zkvc::interactive::MatMulClaim::compute(&xf, &wf);
    let proof = zkvc::interactive::prove_matmul(&xf, &wf, &claim);
    assert!(zkvc::interactive::verify_matmul(&xf, &wf, &claim, &proof));

    let job = MatMulBuilder::new(4, 4, 4)
        .strategy(Strategy::CrpcPsq)
        .build_integers(&x, &w);
    assert_eq!(job.y, claim.y, "both pipelines attest to the same product");
}
