//! Integration tests for verifiable Transformer inference: model circuits
//! compiled with `zkvc-nn`, proved and verified with both backends.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkvc::core::matmul::Strategy;
use zkvc::core::Backend;
use zkvc::nn::circuit::ModelCircuit;
use zkvc::nn::mixer::{MixerSchedule, TokenMixer};
use zkvc::nn::models::{BertConfig, ModelConfig, VitConfig};

fn tiny_vit() -> ModelConfig {
    VitConfig::custom(2, 2, 8, 4, 3).to_model()
}

/// A minimal single-block model small enough to prove under the unoptimised
/// debug profile used by `cargo test`; the release-mode harnesses and
/// examples exercise larger shapes.
fn micro_vit() -> ModelConfig {
    VitConfig::custom(1, 1, 4, 2, 2).to_model()
}

#[test]
fn micro_vit_end_to_end_spartan() {
    // Groth16 on model-sized circuits is exercised by the release-mode
    // examples and harnesses; under the debug profile used by `cargo test`
    // the transparent backend keeps this integration test fast.
    let mut rng = StdRng::seed_from_u64(41);
    let circuit = ModelCircuit::build(
        &micro_vit(),
        &MixerSchedule::soft_free_p(1),
        Strategy::CrpcPsq,
        1,
    );
    assert!(circuit.cs.is_satisfied());
    let artifacts = Backend::Spartan.prove_cs(&circuit.cs, &mut rng);
    assert!(Backend::Spartan.verify_cs(&circuit.cs, &artifacts));
}

#[test]
fn mixer_cost_ordering_matches_table_iii() {
    // SoftApprox > SoftFree-S (scaling) > SoftFree-P (pooling) in constraint
    // count, with the zkVC hybrid between scaling and SoftApprox — the
    // ordering behind the proving times of Table III.
    let model = VitConfig::custom(3, 2, 8, 6, 3).to_model();
    let count =
        |s: &MixerSchedule| ModelCircuit::build(&model, s, Strategy::CrpcPsq, 2).num_constraints();
    let soft = count(&MixerSchedule::soft_approx(3));
    let scaling = count(&MixerSchedule::soft_free_s(3));
    let pooling = count(&MixerSchedule::soft_free_p(3));
    let hybrid = count(&MixerSchedule::zkvc_hybrid(3));
    assert!(
        soft > hybrid,
        "SoftApprox {soft} must exceed hybrid {hybrid}"
    );
    assert!(
        hybrid > scaling,
        "hybrid {hybrid} must exceed pure scaling {scaling}"
    );
    assert!(
        scaling > pooling,
        "scaling {scaling} must exceed pooling {pooling}"
    );
}

#[test]
fn crpc_psq_reduces_model_circuit_size() {
    let model = tiny_vit();
    let schedule = MixerSchedule::soft_free_s(2);
    let vanilla = ModelCircuit::build(&model, &schedule, Strategy::Vanilla, 3).num_constraints();
    let zkvc = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 3).num_constraints();
    assert!(
        zkvc < vanilla,
        "zkVC {zkvc} must be smaller than vanilla {vanilla}"
    );
}

#[test]
fn bert_slice_with_linear_mixer_builds_and_proves() {
    let mut rng = StdRng::seed_from_u64(43);
    // Constraint-count comparison on a 1/16-scale single-layer BERT slice
    // (structure only — proving this size is left to the release harness),
    // plus a Spartan proof of a micro slice.
    let base = BertConfig::paper().to_model().scaled_down(16);
    let model = ModelConfig {
        name: base.name.clone(),
        input_dim: base.input_dim,
        layers: base.layers.into_iter().take(1).collect(),
        num_classes: 2,
    };
    let schedule = MixerSchedule {
        layers: vec![TokenMixer::LinearMixing],
        name: "SoftFree-L",
    };
    let circuit = ModelCircuit::build(&model, &schedule, Strategy::CrpcPsq, 4);
    assert!(circuit.cs.is_satisfied());
    assert!(circuit.num_constraints() > 0);

    let micro = ModelConfig {
        name: "bert-micro".to_string(),
        input_dim: 4,
        layers: vec![zkvc::nn::models::LayerSpec {
            seq_len: 2,
            dim: 4,
            num_heads: 1,
            mlp_dim: 4,
        }],
        num_classes: 2,
    };
    let circuit = ModelCircuit::build(&micro, &schedule, Strategy::CrpcPsq, 4);
    assert!(circuit.cs.is_satisfied());
    let artifacts = Backend::Spartan.prove_cs(&circuit.cs, &mut rng);
    assert!(Backend::Spartan.verify_cs(&circuit.cs, &artifacts));
}

#[test]
fn per_layer_stats_sum_to_total() {
    let circuit = ModelCircuit::build(
        &tiny_vit(),
        &MixerSchedule::soft_approx(2),
        Strategy::CrpcPsq,
        5,
    );
    let sum: usize = circuit.layers.iter().map(|l| l.constraints).sum();
    assert_eq!(sum, circuit.num_constraints());
}
